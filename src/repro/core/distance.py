"""Superimposed distance measures.

The paper defines a *superimposed distance* as a distance applied to two
graphs that have been superimposed (aligned) by a structure-only isomorphism.
Two concrete measures are given:

* **Mutation Distance (MD)** — ``sum_v D(l(v), l'(f(v))) + sum_e D(l(e),
  l'(f(e)))`` where ``D`` is a mutation score matrix over categorical labels.
  With the default 0/1 matrix this counts mismatched labels, which is the
  measure used throughout the paper's experiments ("number of edges whose
  labels are mismatched").
* **Linear Mutation Distance (LD)** — ``sum_v |w(v) - w'(f(v))| + sum_e
  |w(e) - w'(f(e))|`` over numeric weights.

Both measures decompose over vertices and edges, which is exactly why the
partition lower bound (Eq. 2 in the paper) holds: the distance of the whole
superposition is the sum of per-element costs, and a vertex-disjoint
partition of the query touches disjoint subsets of those elements.

A measure exposes three views used by different parts of the system:

``embedding_cost``
    cost of a concrete superposition (used by verification),
``sequence_distance``
    distance between two label/weight sequences read in the same canonical
    order (used by the per-class index backends),
``vectorize``
    optional numeric vector for spatial indexes (R-tree); only the linear
    measure supports it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from .errors import DistanceError
from .graph import LabeledGraph
from .isomorphism import Embedding

try:  # numpy is optional: the kernel falls back to the recursive search
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

__all__ = [
    "MutationScoreMatrix",
    "DistanceMeasure",
    "MutationDistance",
    "LinearMutationDistance",
    "default_edge_mutation_distance",
]

Label = Hashable


class MutationScoreMatrix:
    """Symmetric mutation cost matrix over categorical labels.

    The default behaviour is the 0/1 matrix: identical labels cost 0, any
    mutation costs ``mismatch_cost`` (1 by default).  Specific label pairs
    can be overridden with :meth:`set_score`, e.g. to make a single→double
    bond mutation cheaper than single→triple.

    Examples
    --------
    >>> matrix = MutationScoreMatrix()
    >>> matrix.score("C", "C")
    0.0
    >>> matrix.score("C", "N")
    1.0
    >>> matrix.set_score("single", "double", 0.5)
    >>> matrix.score("double", "single")
    0.5
    """

    def __init__(
        self,
        scores: Optional[Mapping[Tuple[Label, Label], float]] = None,
        mismatch_cost: float = 1.0,
        match_cost: float = 0.0,
    ):
        if mismatch_cost < 0 or match_cost < 0:
            raise DistanceError("mutation costs must be non-negative")
        self.mismatch_cost = float(mismatch_cost)
        self.match_cost = float(match_cost)
        self._scores: Dict[Tuple[Label, Label], float] = {}
        if scores:
            for (a, b), cost in scores.items():
                self.set_score(a, b, cost)

    @staticmethod
    def _key(a: Label, b: Label) -> Tuple[Label, Label]:
        pair = sorted(((type(a).__name__, repr(a), a), (type(b).__name__, repr(b), b)))
        return (pair[0][2], pair[1][2])

    def set_score(self, a: Label, b: Label, cost: float) -> None:
        """Set the mutation cost between labels ``a`` and ``b`` (symmetric)."""
        if cost < 0:
            raise DistanceError("mutation costs must be non-negative")
        self._scores[self._key(a, b)] = float(cost)

    def score(self, a: Label, b: Label) -> float:
        """Return the mutation cost between labels ``a`` and ``b``."""
        if a == b:
            return self._scores.get(self._key(a, b), self.match_cost)
        return self._scores.get(self._key(a, b), self.mismatch_cost)

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-serializable description of the matrix."""
        return {
            "mismatch_cost": self.mismatch_cost,
            "match_cost": self.match_cost,
            "scores": [
                {"a": a, "b": b, "cost": cost}
                for (a, b), cost in sorted(
                    self._scores.items(), key=lambda item: repr(item[0])
                )
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MutationScoreMatrix":
        """Rebuild a matrix from :meth:`to_dict` output."""
        matrix = cls(
            mismatch_cost=data.get("mismatch_cost", 1.0),
            match_cost=data.get("match_cost", 0.0),
        )
        for entry in data.get("scores", []):
            matrix.set_score(entry["a"], entry["b"], entry["cost"])
        return matrix


class DistanceMeasure:
    """Base class for superimposed distance measures.

    A measure declares which graph elements it scores (vertices and/or
    edges) and how a single superimposed pair is scored.  All derived
    quantities (embedding cost, sequence distance, partial costs for
    branch-and-bound) are implemented here once.
    """

    #: short identifier used in serialized indexes and reports
    name = "abstract"

    def __init__(self, include_vertices: bool = True, include_edges: bool = True):
        if not include_vertices and not include_edges:
            raise DistanceError(
                "a distance measure must score vertices, edges, or both"
            )
        self.include_vertices = include_vertices
        self.include_edges = include_edges

    # ------------------------------------------------------------------
    # element-level costs (to be overridden)
    # ------------------------------------------------------------------
    def vertex_cost(
        self,
        query: LabeledGraph,
        query_vertex: Hashable,
        target: LabeledGraph,
        target_vertex: Hashable,
    ) -> float:
        """Cost of superimposing one query vertex onto one target vertex."""
        raise NotImplementedError

    def edge_cost(
        self,
        query: LabeledGraph,
        query_edge: Tuple[Hashable, Hashable],
        target: LabeledGraph,
        target_edge: Tuple[Hashable, Hashable],
    ) -> float:
        """Cost of superimposing one query edge onto one target edge."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # vectorized cost tables (used by repro.core.kernel)
    # ------------------------------------------------------------------
    def vertex_cost_matrix(
        self,
        query: LabeledGraph,
        query_vertices: Sequence[Hashable],
        target: LabeledGraph,
        target_vertices: Sequence[Hashable],
    ) -> Any:
        """Dense ``len(query_vertices) x len(target_vertices)`` cost matrix.

        Entry ``[i, j]`` must equal ``vertex_cost(query, query_vertices[i],
        target, target_vertices[j])`` *exactly* (bit-for-bit): the kernel
        relies on this to stay byte-identical to the recursive path.  The
        generic implementation evaluates the scalar hook per cell, so any
        third-party measure is automatically kernel-compatible; subclasses
        override it with batched computation.  Returns ``None`` when numpy
        is unavailable, which disables the kernel for this measure.
        """
        if _np is None:
            return None
        table = _np.empty(
            (len(query_vertices), len(target_vertices)), dtype=_np.float64
        )
        for i, qv in enumerate(query_vertices):
            for j, tv in enumerate(target_vertices):
                table[i, j] = self.vertex_cost(query, qv, target, tv)
        return table

    def edge_cost_table(
        self,
        query: LabeledGraph,
        query_edges: Sequence[Tuple[Hashable, Hashable]],
        target: LabeledGraph,
        target_edges: Sequence[Tuple[Hashable, Hashable]],
    ) -> Any:
        """Dense ``len(query_edges) x len(target_edges)`` edge-cost table.

        Entry ``[i, j]`` must equal ``edge_cost(query, query_edges[i],
        target, target_edges[j])`` exactly, mirroring
        :meth:`vertex_cost_matrix`.  Returns ``None`` when numpy is
        unavailable.
        """
        if _np is None:
            return None
        table = _np.empty((len(query_edges), len(target_edges)), dtype=_np.float64)
        for i, qe in enumerate(query_edges):
            for j, te in enumerate(target_edges):
                table[i, j] = self.edge_cost(query, qe, target, te)
        return table

    # ------------------------------------------------------------------
    # element annotations (used by the index backends)
    # ------------------------------------------------------------------
    def vertex_annotation(self, graph: LabeledGraph, vertex: Hashable) -> Any:
        """Value stored per vertex in index sequences (label or weight)."""
        raise NotImplementedError

    def edge_annotation(
        self, graph: LabeledGraph, edge: Tuple[Hashable, Hashable]
    ) -> Any:
        """Value stored per edge in index sequences (label or weight)."""
        raise NotImplementedError

    def annotation_distance(self, a: Any, b: Any) -> float:
        """Distance between two per-element annotations."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def embedding_cost(
        self, query: LabeledGraph, target: LabeledGraph, embedding: Embedding
    ) -> float:
        """Total cost of superimposing ``query`` onto ``target`` via ``embedding``."""
        total = 0.0
        if self.include_vertices:
            for qv, tv in embedding.mapping.items():
                total += self.vertex_cost(query, qv, target, tv)
        if self.include_edges:
            for q_edge, t_edge in embedding.edge_pairs(query):
                total += self.edge_cost(query, q_edge, target, t_edge)
        return total

    def sequence_distance(self, a: Sequence[Any], b: Sequence[Any]) -> float:
        """Distance between two annotation sequences of equal length.

        Sequences are produced by :class:`repro.index.sequence.FragmentSequencer`
        in the canonical order of a structural equivalence class, so position
        ``i`` of both sequences refers to the same canonical element.
        """
        if len(a) != len(b):
            raise DistanceError(
                f"sequences must have equal length ({len(a)} != {len(b)})"
            )
        return sum(self.annotation_distance(x, y) for x, y in zip(a, b))

    def supports_vectorization(self) -> bool:
        """Return ``True`` if annotations are numeric (R-tree friendly)."""
        return False

    def vectorize(self, sequence: Sequence[Any]) -> Tuple[float, ...]:
        """Convert an annotation sequence into a numeric vector."""
        raise DistanceError(f"{self.name} does not support vectorization")

    def describe(self) -> Dict[str, Any]:
        """Return a JSON-serializable description of this measure."""
        return {
            "name": self.name,
            "include_vertices": self.include_vertices,
            "include_edges": self.include_edges,
        }

    def cache_token(self) -> str:
        """Stable identity token of the measure's semantics, for cache keys.

        Two measures with the same :meth:`describe` output score every
        superposition identically, so memoized distances keyed by this token
        can safely be shared between measure instances (and never between
        semantically different measures).

        Examples
        --------
        >>> default_edge_mutation_distance().cache_token() == \\
        ...     default_edge_mutation_distance().cache_token()
        True
        >>> MutationDistance().cache_token() == \\
        ...     LinearMutationDistance().cache_token()
        False
        """
        return json.dumps(self.describe(), sort_keys=True, default=repr)


class MutationDistance(DistanceMeasure):
    """Mutation distance (MD) over categorical labels.

    Parameters
    ----------
    matrix:
        Mutation score matrix; defaults to the 0/1 matrix, in which case the
        distance is simply the number of mismatched labels.
    include_vertices / include_edges:
        Which elements are scored.  The paper's experiments use
        ``include_vertices=False, include_edges=True`` ("we ignore vertex
        labels in this test"); see :func:`default_edge_mutation_distance`.
    """

    name = "mutation"

    def __init__(
        self,
        matrix: Optional[MutationScoreMatrix] = None,
        include_vertices: bool = True,
        include_edges: bool = True,
    ):
        super().__init__(include_vertices=include_vertices, include_edges=include_edges)
        self.matrix = matrix if matrix is not None else MutationScoreMatrix()

    def vertex_cost(self, query, query_vertex, target, target_vertex) -> float:
        return self.matrix.score(
            query.vertex_label(query_vertex), target.vertex_label(target_vertex)
        )

    def edge_cost(self, query, query_edge, target, target_edge) -> float:
        return self.matrix.score(
            query.edge_label(*query_edge), target.edge_label(*target_edge)
        )

    def _label_cost_table(self, q_labels: List[Any], t_labels: List[Any]) -> Any:
        """Score every label pair, evaluating the matrix once per unique pair.

        Labels are uniqued by ``(type(label), label)`` so that values that
        compare equal across types (``1`` vs ``True``) keep distinct codes.
        Unhashable labels fall back to the per-cell scalar loop.
        """
        try:
            q_unique: Dict[Any, int] = {}
            q_codes = [
                q_unique.setdefault((type(lab), lab), len(q_unique))
                for lab in q_labels
            ]
            t_unique: Dict[Any, int] = {}
            t_codes = [
                t_unique.setdefault((type(lab), lab), len(t_unique))
                for lab in t_labels
            ]
        except TypeError:
            table = _np.empty((len(q_labels), len(t_labels)), dtype=_np.float64)
            for i, a in enumerate(q_labels):
                for j, b in enumerate(t_labels):
                    table[i, j] = self.matrix.score(a, b)
            return table
        base = _np.empty((len(q_unique), len(t_unique)), dtype=_np.float64)
        for (_, a), i in q_unique.items():
            for (_, b), j in t_unique.items():
                base[i, j] = self.matrix.score(a, b)
        rows = _np.asarray(q_codes, dtype=_np.intp)
        cols = _np.asarray(t_codes, dtype=_np.intp)
        return base[rows[:, None], cols[None, :]]

    @staticmethod
    def _edge_label_list(
        graph: LabeledGraph, edges: Sequence[Tuple[Hashable, Hashable]]
    ) -> List[Any]:
        """Edge labels for ``edges`` via one bulk read of the label map.

        The kernel passes canonical edge keys, which index the label map
        directly; non-canonical keys fall back to the accessor.
        """
        labels = graph.edge_labels()
        try:
            return [labels[e] for e in edges]
        except (KeyError, TypeError):
            return [graph.edge_label(*e) for e in edges]

    def vertex_cost_matrix(self, query, query_vertices, target, target_vertices):
        if _np is None:
            return None
        query_labels = query.vertex_labels()
        target_labels = target.vertex_labels()
        return self._label_cost_table(
            [query_labels[v] for v in query_vertices],
            [target_labels[v] for v in target_vertices],
        )

    def edge_cost_table(self, query, query_edges, target, target_edges):
        if _np is None:
            return None
        return self._label_cost_table(
            self._edge_label_list(query, query_edges),
            self._edge_label_list(target, target_edges),
        )

    def vertex_annotation(self, graph, vertex):
        return graph.vertex_label(vertex)

    def edge_annotation(self, graph, edge):
        return graph.edge_label(*edge)

    def annotation_distance(self, a, b) -> float:
        return self.matrix.score(a, b)

    def describe(self) -> Dict[str, Any]:
        data = super().describe()
        data["matrix"] = self.matrix.to_dict()
        return data


class LinearMutationDistance(DistanceMeasure):
    """Linear mutation distance (LD) over numeric weights.

    The per-element cost is ``|w - w'|``; elements without an explicit
    weight default to 0.  Annotation sequences are numeric, so this measure
    supports vectorization and can be indexed with an R-tree.
    """

    name = "linear"

    def __init__(self, include_vertices: bool = True, include_edges: bool = True):
        super().__init__(include_vertices=include_vertices, include_edges=include_edges)

    def vertex_cost(self, query, query_vertex, target, target_vertex) -> float:
        return abs(
            query.vertex_weight(query_vertex) - target.vertex_weight(target_vertex)
        )

    def edge_cost(self, query, query_edge, target, target_edge) -> float:
        return abs(query.edge_weight(*query_edge) - target.edge_weight(*target_edge))

    def vertex_cost_matrix(self, query, query_vertices, target, target_vertices):
        if _np is None:
            return None
        q = _np.array(
            [query.vertex_weight(v) for v in query_vertices], dtype=_np.float64
        )
        t = _np.array(
            [target.vertex_weight(v) for v in target_vertices], dtype=_np.float64
        )
        return _np.abs(q[:, None] - t[None, :])

    def edge_cost_table(self, query, query_edges, target, target_edges):
        if _np is None:
            return None
        q = _np.array([query.edge_weight(*e) for e in query_edges], dtype=_np.float64)
        t = _np.array([target.edge_weight(*e) for e in target_edges], dtype=_np.float64)
        return _np.abs(q[:, None] - t[None, :])

    def vertex_annotation(self, graph, vertex):
        return float(graph.vertex_weight(vertex))

    def edge_annotation(self, graph, edge):
        return float(graph.edge_weight(*edge))

    def annotation_distance(self, a, b) -> float:
        return abs(float(a) - float(b))

    def supports_vectorization(self) -> bool:
        return True

    def vectorize(self, sequence: Sequence[Any]) -> Tuple[float, ...]:
        return tuple(float(x) for x in sequence)


def default_edge_mutation_distance() -> MutationDistance:
    """Return the measure used in the paper's experiments.

    Section 7: "We use the edge mutation distance ... the number of edges
    whose labels are mismatched when we superimpose the query graph to a
    target graph.  We ignore vertex labels in this test."
    """
    return MutationDistance(include_vertices=False, include_edges=True)
