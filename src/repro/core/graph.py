"""Labeled, undirected graph model used throughout the PIS library.

The paper works with *labeled graphs*: vertices and edges carry categorical
labels (atom and bond types for chemical data) and, for the linear mutation
distance, numeric weights.  Subgraph isomorphism in the paper is computed on
the *skeleton* (structure without labels); labels only enter through the
superimposed distance measure.  :class:`LabeledGraph` therefore keeps labels
and weights as separate, optional annotations on top of an adjacency
structure.

Vertices are identified by hashable ids (typically small integers).  Edges
are undirected and stored once per endpoint pair, keyed by the canonical
``(min(u, v), max(u, v))`` tuple for ids that support ordering; arbitrary
hashable ids are supported through a total order on ``repr``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from .errors import (
    DuplicateEdgeError,
    DuplicateVertexError,
    EdgeNotFoundError,
    VertexNotFoundError,
)

__all__ = ["LabeledGraph", "edge_key", "GraphStats"]

VertexId = Hashable
EdgeKey = Tuple[Hashable, Hashable]

#: Label used when a vertex or edge has no explicit label.  Keeping a single
#: shared sentinel (rather than ``None``) makes label sequences serializable.
DEFAULT_LABEL = "*"


def edge_key(u: VertexId, v: VertexId) -> EdgeKey:
    """Return the canonical undirected key for the edge ``(u, v)``.

    The key is order-independent: ``edge_key(a, b) == edge_key(b, a)``.
    Vertex ids that are mutually orderable are ordered directly; otherwise
    the tie is broken on ``(type name, repr)`` so that any two hashable ids
    receive a deterministic, symmetric key.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        a = (type(u).__name__, repr(u))
        b = (type(v).__name__, repr(v))
        return (u, v) if a <= b else (v, u)


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a single graph (used by dataset reports)."""

    num_vertices: int
    num_edges: int
    num_vertex_labels: int
    num_edge_labels: int
    max_degree: int

    def as_dict(self) -> Dict[str, int]:
        """Return the statistics as a plain dictionary."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "num_vertex_labels": self.num_vertex_labels,
            "num_edge_labels": self.num_edge_labels,
            "max_degree": self.max_degree,
        }


class LabeledGraph:
    """An undirected graph with categorical labels and optional weights.

    Parameters
    ----------
    name:
        Optional human-readable name (e.g. a compound identifier).

    Examples
    --------
    >>> g = LabeledGraph(name="triangle")
    >>> for v in range(3):
    ...     _ = g.add_vertex(v, label="C")
    >>> _ = g.add_edge(0, 1, label="single")
    >>> _ = g.add_edge(1, 2, label="double")
    >>> _ = g.add_edge(0, 2, label="single")
    >>> g.num_vertices, g.num_edges
    (3, 3)
    >>> g.edge_label(2, 1)
    'double'
    """

    __slots__ = (
        "name",
        "_adjacency",
        "_vertex_labels",
        "_edge_labels",
        "_vertex_weights",
        "_edge_weights",
        "_revision",
        "_kernel_arrays",
        # weakref support: the kernel's per-pair cost-table cache validates
        # its identity keys through weak references to the target graph.
        "__weakref__",
    )

    def __init__(self, name: str = ""):
        self.name = name
        self._adjacency: Dict[VertexId, Set[VertexId]] = {}
        self._vertex_labels: Dict[VertexId, Any] = {}
        self._edge_labels: Dict[EdgeKey, Any] = {}
        self._vertex_weights: Dict[VertexId, float] = {}
        self._edge_weights: Dict[EdgeKey, float] = {}
        # Structural revision: bumped on every mutation so derived data (the
        # array encoding used by repro.core.kernel) can be cached on the graph
        # and invalidated without hashing the whole structure.
        self._revision: int = 0
        self._kernel_arrays: Any = None

    @property
    def revision(self) -> int:
        """Monotonic counter bumped by every structural or label mutation."""
        return self._revision

    def _bump_revision(self) -> None:
        self._revision += 1
        self._kernel_arrays = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        vertex: VertexId,
        label: Any = DEFAULT_LABEL,
        weight: Optional[float] = None,
    ) -> VertexId:
        """Add a vertex with an optional label and numeric weight.

        Raises
        ------
        DuplicateVertexError
            If the vertex id already exists.
        """
        if vertex in self._adjacency:
            raise DuplicateVertexError(vertex)
        self._adjacency[vertex] = set()
        self._vertex_labels[vertex] = label
        if weight is not None:
            self._vertex_weights[vertex] = float(weight)
        self._bump_revision()
        return vertex

    def add_edge(
        self,
        u: VertexId,
        v: VertexId,
        label: Any = DEFAULT_LABEL,
        weight: Optional[float] = None,
    ) -> EdgeKey:
        """Add an undirected edge ``(u, v)`` with an optional label/weight.

        Both endpoints must already exist.  Self-loops are rejected because
        the paper's chemical graphs (and its distance measures) never use
        them; the NP-hardness reduction in the paper uses self-loops only as
        a gadget, which we do not need to execute.

        Raises
        ------
        VertexNotFoundError
            If either endpoint is missing.
        DuplicateEdgeError
            If the edge already exists.
        ValueError
            If ``u == v`` (self-loop).
        """
        if u not in self._adjacency:
            raise VertexNotFoundError(u)
        if v not in self._adjacency:
            raise VertexNotFoundError(v)
        if u == v:
            raise ValueError("self-loops are not supported")
        key = edge_key(u, v)
        if key in self._edge_labels:
            raise DuplicateEdgeError(u, v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._edge_labels[key] = label
        if weight is not None:
            self._edge_weights[key] = float(weight)
        self._bump_revision()
        return key

    def remove_vertex(self, vertex: VertexId) -> None:
        """Remove a vertex and all its incident edges."""
        if vertex not in self._adjacency:
            raise VertexNotFoundError(vertex)
        for neighbor in list(self._adjacency[vertex]):
            self.remove_edge(vertex, neighbor)
        del self._adjacency[vertex]
        del self._vertex_labels[vertex]
        self._vertex_weights.pop(vertex, None)
        self._bump_revision()

    def remove_edge(self, u: VertexId, v: VertexId) -> None:
        """Remove the undirected edge ``(u, v)``."""
        key = edge_key(u, v)
        if key not in self._edge_labels:
            raise EdgeNotFoundError(u, v)
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        del self._edge_labels[key]
        self._edge_weights.pop(key, None)
        self._bump_revision()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._edge_labels)

    def __len__(self) -> int:
        return self.num_vertices

    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._adjacency

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over vertex ids."""
        return iter(self._adjacency)

    def edges(self) -> Iterator[EdgeKey]:
        """Iterate over canonical edge keys ``(u, v)``."""
        return iter(self._edge_labels)

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        return edge_key(u, v) in self._edge_labels

    def neighbors(self, vertex: VertexId) -> Set[VertexId]:
        """Return the set of neighbors of ``vertex``."""
        if vertex not in self._adjacency:
            raise VertexNotFoundError(vertex)
        return set(self._adjacency[vertex])

    def degree(self, vertex: VertexId) -> int:
        """Return the degree of ``vertex``."""
        if vertex not in self._adjacency:
            raise VertexNotFoundError(vertex)
        return len(self._adjacency[vertex])

    def vertex_label(self, vertex: VertexId) -> Any:
        """Return the label of ``vertex``."""
        if vertex not in self._vertex_labels:
            raise VertexNotFoundError(vertex)
        return self._vertex_labels[vertex]

    def edge_label(self, u: VertexId, v: VertexId) -> Any:
        """Return the label of the edge ``(u, v)``."""
        key = edge_key(u, v)
        if key not in self._edge_labels:
            raise EdgeNotFoundError(u, v)
        return self._edge_labels[key]

    def vertex_weight(self, vertex: VertexId, default: float = 0.0) -> float:
        """Return the numeric weight of ``vertex`` (``default`` if unset)."""
        if vertex not in self._adjacency:
            raise VertexNotFoundError(vertex)
        return self._vertex_weights.get(vertex, default)

    def edge_weight(self, u: VertexId, v: VertexId, default: float = 0.0) -> float:
        """Return the numeric weight of edge ``(u, v)`` (``default`` if unset)."""
        key = edge_key(u, v)
        if key not in self._edge_labels:
            raise EdgeNotFoundError(u, v)
        return self._edge_weights.get(key, default)

    def set_vertex_label(self, vertex: VertexId, label: Any) -> None:
        """Replace the label of ``vertex``."""
        if vertex not in self._vertex_labels:
            raise VertexNotFoundError(vertex)
        self._vertex_labels[vertex] = label
        self._bump_revision()

    def set_edge_label(self, u: VertexId, v: VertexId, label: Any) -> None:
        """Replace the label of edge ``(u, v)``."""
        key = edge_key(u, v)
        if key not in self._edge_labels:
            raise EdgeNotFoundError(u, v)
        self._edge_labels[key] = label
        self._bump_revision()

    def set_vertex_weight(self, vertex: VertexId, weight: float) -> None:
        """Replace the weight of ``vertex``."""
        if vertex not in self._adjacency:
            raise VertexNotFoundError(vertex)
        self._vertex_weights[vertex] = float(weight)
        self._bump_revision()

    def set_edge_weight(self, u: VertexId, v: VertexId, weight: float) -> None:
        """Replace the weight of edge ``(u, v)``."""
        key = edge_key(u, v)
        if key not in self._edge_labels:
            raise EdgeNotFoundError(u, v)
        self._edge_weights[key] = float(weight)
        self._bump_revision()

    def vertex_labels(self) -> Dict[VertexId, Any]:
        """Return a copy of the vertex-label mapping."""
        return dict(self._vertex_labels)

    def edge_labels(self) -> Dict[EdgeKey, Any]:
        """Return a copy of the edge-label mapping."""
        return dict(self._edge_labels)

    def stats(self) -> GraphStats:
        """Return :class:`GraphStats` describing this graph."""
        max_degree = max((len(n) for n in self._adjacency.values()), default=0)
        return GraphStats(
            num_vertices=self.num_vertices,
            num_edges=self.num_edges,
            num_vertex_labels=len(set(self._vertex_labels.values())),
            num_edge_labels=len(set(self._edge_labels.values())),
            max_degree=max_degree,
        )

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "LabeledGraph":
        """Return a deep copy of this graph."""
        other = LabeledGraph(name=self.name if name is None else name)
        other._adjacency = {v: set(n) for v, n in self._adjacency.items()}
        other._vertex_labels = dict(self._vertex_labels)
        other._edge_labels = dict(self._edge_labels)
        other._vertex_weights = dict(self._vertex_weights)
        other._edge_weights = dict(self._edge_weights)
        return other

    def subgraph(self, vertices: Iterable[VertexId]) -> "LabeledGraph":
        """Return the subgraph induced by ``vertices`` (labels preserved)."""
        selected = set(vertices)
        missing = selected - set(self._adjacency)
        if missing:
            raise VertexNotFoundError(next(iter(missing)))
        sub = LabeledGraph(name=self.name)
        for v in selected:
            sub.add_vertex(
                v,
                label=self._vertex_labels[v],
                weight=self._vertex_weights.get(v),
            )
        for (u, v), label in self._edge_labels.items():
            if u in selected and v in selected:
                sub.add_edge(u, v, label=label, weight=self._edge_weights.get((u, v)))
        return sub

    def edge_subgraph(self, edges: Iterable[EdgeKey]) -> "LabeledGraph":
        """Return the subgraph spanned by ``edges`` (labels preserved)."""
        sub = LabeledGraph(name=self.name)
        for u, v in edges:
            key = edge_key(u, v)
            if key not in self._edge_labels:
                raise EdgeNotFoundError(u, v)
            for endpoint in key:
                if endpoint not in sub:
                    sub.add_vertex(
                        endpoint,
                        label=self._vertex_labels[endpoint],
                        weight=self._vertex_weights.get(endpoint),
                    )
            sub.add_edge(
                key[0],
                key[1],
                label=self._edge_labels[key],
                weight=self._edge_weights.get(key),
            )
        return sub

    def relabeled(self, mapping: Dict[VertexId, VertexId]) -> "LabeledGraph":
        """Return a copy with vertex ids renamed according to ``mapping``.

        Every vertex must appear in ``mapping`` and the mapping must be
        injective.  Labels and weights are carried over unchanged.
        """
        if set(mapping) != set(self._adjacency):
            raise ValueError("mapping must cover exactly the vertex set")
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("mapping must be injective")
        out = LabeledGraph(name=self.name)
        for v in self._adjacency:
            out.add_vertex(
                mapping[v],
                label=self._vertex_labels[v],
                weight=self._vertex_weights.get(v),
            )
        for (u, v), label in self._edge_labels.items():
            out.add_edge(
                mapping[u],
                mapping[v],
                label=label,
                weight=self._edge_weights.get((u, v)),
            )
        return out

    def skeleton(self) -> "LabeledGraph":
        """Return a copy with all labels replaced by the default label.

        The skeleton (the paper calls it the *structure* or *topology*) is
        what subgraph isomorphism and canonical codes operate on.
        """
        out = LabeledGraph(name=self.name)
        for v in self._adjacency:
            out.add_vertex(v, label=DEFAULT_LABEL)
        for (u, v) in self._edge_labels:
            out.add_edge(u, v, label=DEFAULT_LABEL)
        return out

    # ------------------------------------------------------------------
    # connectivity helpers
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Return ``True`` if the graph is connected (empty graph counts)."""
        if not self._adjacency:
            return True
        start = next(iter(self._adjacency))
        seen = {start}
        stack = [start]
        while stack:
            v = stack.pop()
            for w in self._adjacency[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == len(self._adjacency)

    def connected_components(self) -> List[Set[VertexId]]:
        """Return the list of connected components as vertex sets."""
        remaining = set(self._adjacency)
        components: List[Set[VertexId]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            stack = [start]
            while stack:
                v = stack.pop()
                for w in self._adjacency[v]:
                    if w not in seen:
                        seen.add(w)
                        stack.append(w)
            components.append(seen)
            remaining -= seen
        return components

    # ------------------------------------------------------------------
    # equality / hashing / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Structural equality on identical vertex ids, labels and weights.

        Note this is *not* isomorphism: two isomorphic graphs with different
        vertex ids are not ``==``.  Use :mod:`repro.core.isomorphism` for
        isomorphism checks.
        """
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return (
            self._adjacency == other._adjacency
            and self._vertex_labels == other._vertex_labels
            and self._edge_labels == other._edge_labels
            and self._vertex_weights == other._vertex_weights
            and self._edge_weights == other._edge_weights
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<LabeledGraph{label} |V|={self.num_vertices} |E|={self.num_edges}>"
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Pickle/deepcopy state excluding the cached array encoding.

        The kernel arrays are a pure derivative of the structure; shipping
        them to process workers (or duplicating them on deepcopy) would only
        waste bandwidth, so the copy rebuilds its cache lazily on first use.
        """
        return {
            "name": self.name,
            "_adjacency": self._adjacency,
            "_vertex_labels": self._vertex_labels,
            "_edge_labels": self._edge_labels,
            "_vertex_weights": self._vertex_weights,
            "_edge_weights": self._edge_weights,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)
        self._revision = 0
        self._kernel_arrays = None

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-serializable dictionary representation."""
        return {
            "name": self.name,
            "vertices": [
                {
                    "id": v,
                    "label": self._vertex_labels[v],
                    "weight": self._vertex_weights.get(v),
                }
                for v in self._adjacency
            ],
            "edges": [
                {
                    "u": u,
                    "v": v,
                    "label": label,
                    "weight": self._edge_weights.get((u, v)),
                }
                for (u, v), label in self._edge_labels.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LabeledGraph":
        """Rebuild a graph from :meth:`to_dict` output."""
        graph = cls(name=data.get("name", ""))
        for vertex in data.get("vertices", []):
            graph.add_vertex(
                vertex["id"], label=vertex.get("label", DEFAULT_LABEL),
                weight=vertex.get("weight"),
            )
        for edge in data.get("edges", []):
            graph.add_edge(
                edge["u"], edge["v"], label=edge.get("label", DEFAULT_LABEL),
                weight=edge.get("weight"),
            )
        return graph

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[VertexId, VertexId]],
        vertex_labels: Optional[Dict[VertexId, Any]] = None,
        edge_labels: Optional[Dict[EdgeKey, Any]] = None,
        name: str = "",
    ) -> "LabeledGraph":
        """Build a graph from an edge list with optional label mappings.

        Vertices are created on first use.  ``edge_labels`` keys may be in
        either endpoint order.
        """
        vertex_labels = vertex_labels or {}
        edge_labels = edge_labels or {}
        normalized_edge_labels = {
            edge_key(u, v): label for (u, v), label in edge_labels.items()
        }
        graph = cls(name=name)
        for u, v in edges:
            for endpoint in (u, v):
                if endpoint not in graph:
                    graph.add_vertex(
                        endpoint, label=vertex_labels.get(endpoint, DEFAULT_LABEL)
                    )
            graph.add_edge(
                u, v, label=normalized_edge_labels.get(edge_key(u, v), DEFAULT_LABEL)
            )
        return graph
