"""Core substrate: graphs, isomorphism, distances, canonical codes, fragments."""

from .errors import (
    DatasetError,
    DistanceError,
    DuplicateEdgeError,
    DuplicateVertexError,
    EdgeNotFoundError,
    EngineConfigError,
    EngineError,
    FeatureNotIndexedError,
    GraphError,
    IncompatibleGraphsError,
    IndexError_,
    IndexNotBuiltError,
    PartitionError,
    PISError,
    SerializationError,
    UnknownComponentError,
    VertexNotFoundError,
)
from .graph import DEFAULT_LABEL, GraphStats, LabeledGraph, edge_key
from .database import DatabaseStats, GraphDatabase
from .isomorphism import (
    Embedding,
    automorphisms,
    count_embeddings,
    find_embeddings,
    has_embedding,
    is_isomorphic,
    is_subgraph,
    iter_embeddings,
)
from .distance import (
    DistanceMeasure,
    LinearMutationDistance,
    MutationDistance,
    MutationScoreMatrix,
    default_edge_mutation_distance,
)
from .superimposed import (
    INFINITE_DISTANCE,
    SuperpositionResult,
    best_superposition,
    graph_pair_distance,
    minimum_superimposed_distance,
    within_distance,
)
from .canonical import (
    CanonicalCode,
    adjacency_code,
    code_to_graph,
    labeled_code,
    min_dfs_code,
    min_dfs_vertex_order,
    structure_code,
)
from .fragments import (
    count_connected_fragments,
    fragment_from_edges,
    iter_connected_edge_sets,
    iter_connected_fragments,
)

__all__ = [
    # errors
    "PISError",
    "GraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "DuplicateVertexError",
    "DuplicateEdgeError",
    "DistanceError",
    "IncompatibleGraphsError",
    "IndexError_",
    "FeatureNotIndexedError",
    "IndexNotBuiltError",
    "PartitionError",
    "DatasetError",
    "SerializationError",
    "EngineError",
    "EngineConfigError",
    "UnknownComponentError",
    # graph
    "LabeledGraph",
    "GraphStats",
    "edge_key",
    "DEFAULT_LABEL",
    # database
    "GraphDatabase",
    "DatabaseStats",
    # isomorphism
    "Embedding",
    "iter_embeddings",
    "find_embeddings",
    "count_embeddings",
    "has_embedding",
    "is_subgraph",
    "is_isomorphic",
    "automorphisms",
    # distance
    "DistanceMeasure",
    "MutationDistance",
    "LinearMutationDistance",
    "MutationScoreMatrix",
    "default_edge_mutation_distance",
    # superimposed
    "SuperpositionResult",
    "best_superposition",
    "minimum_superimposed_distance",
    "within_distance",
    "graph_pair_distance",
    "INFINITE_DISTANCE",
    # canonical
    "CanonicalCode",
    "min_dfs_code",
    "min_dfs_vertex_order",
    "structure_code",
    "labeled_code",
    "code_to_graph",
    "adjacency_code",
    # fragments
    "iter_connected_edge_sets",
    "iter_connected_fragments",
    "count_connected_fragments",
    "fragment_from_edges",
]
