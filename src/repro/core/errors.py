"""Exception hierarchy for the PIS library.

Every error raised by the library derives from :class:`PISError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "PISError",
    "GraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "DuplicateVertexError",
    "DuplicateEdgeError",
    "DistanceError",
    "IncompatibleGraphsError",
    "IndexError_",
    "FeatureNotIndexedError",
    "IndexNotBuiltError",
    "PartitionError",
    "DatasetError",
    "SerializationError",
    "EngineError",
    "EngineConfigError",
    "UnknownComponentError",
    "ServeError",
    "ServeOverloadedError",
    "ServeShuttingDownError",
    "WalError",
    "WalCorruptionError",
]


class PISError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(PISError):
    """Base class for errors related to graph construction or access."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex id was referenced that does not exist in the graph."""

    def __init__(self, vertex):
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was referenced that does not exist in the graph."""

    def __init__(self, u, v):
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class DuplicateVertexError(GraphError, ValueError):
    """A vertex id was added twice to the same graph."""

    def __init__(self, vertex):
        super().__init__(f"vertex {vertex!r} already exists in the graph")
        self.vertex = vertex


class DuplicateEdgeError(GraphError, ValueError):
    """An edge was added twice to the same graph."""

    def __init__(self, u, v):
        super().__init__(f"edge ({u!r}, {v!r}) already exists in the graph")
        self.edge = (u, v)


class DistanceError(PISError):
    """Base class for errors raised by superimposed distance measures."""


class IncompatibleGraphsError(DistanceError, ValueError):
    """Two graphs passed to a superimposed distance are not isomorphic."""


class IndexError_(PISError):
    """Base class for errors raised by the fragment-based index.

    The trailing underscore avoids shadowing the builtin :class:`IndexError`.
    """


class FeatureNotIndexedError(IndexError_, KeyError):
    """A structural equivalence class was queried that is not indexed."""

    def __init__(self, code):
        super().__init__(f"structure code {code!r} is not indexed")
        self.code = code


class IndexNotBuiltError(IndexError_, RuntimeError):
    """An operation requiring a built index was called before building it."""


class PartitionError(PISError):
    """A query-graph partition violated the vertex-disjointness constraint."""


class DatasetError(PISError):
    """Errors raised by dataset generators, loaders, and query samplers."""


class SerializationError(PISError):
    """Errors raised while (de)serializing graphs or indexes."""


class EngineError(PISError):
    """Base class for errors raised by the :class:`repro.engine.Engine` facade."""


class EngineConfigError(EngineError, ValueError):
    """An engine configuration is malformed or inconsistent."""


class ServeError(EngineError):
    """Errors raised by the serving subsystem (:mod:`repro.serve`)."""


class ServeOverloadedError(ServeError):
    """A request was shed by admission control (the server is overloaded).

    Shedding happens *before* any work runs, so a shed request had no
    effect and is always safe to retry; ``retryable`` records that so
    generic handlers can branch on it without string-matching.
    :class:`repro.serve.ServeClient` raises this after its (optional)
    bounded exponential-backoff retries are exhausted.
    """

    retryable = True


class ServeShuttingDownError(ServeError):
    """A request arrived while the server was draining for shutdown.

    Like an overload shed, the request was rejected before any work ran —
    but the server is going away, so retrying against the same connection
    cannot succeed (``retryable`` is false).
    """

    retryable = False


class WalError(PISError):
    """Errors raised by the write-ahead log (:mod:`repro.store`)."""


class WalCorruptionError(WalError):
    """A WAL segment holds a record that fails its checksum mid-stream.

    A torn *tail* (the final record of the final segment cut short by a
    crash) is expected and silently dropped; corruption anywhere else means
    the log cannot be trusted and replay must stop loudly.
    """


class UnknownComponentError(EngineError, KeyError):
    """A registry lookup used a name no component was registered under."""

    def __init__(self, kind, name, available):
        super().__init__(
            f"unknown {kind} {name!r}; available: {sorted(available)}"
        )
        self.kind = kind
        self.name = name
        self.available = sorted(available)

    def __str__(self):
        # KeyError.__str__ reprs the message (adding quotes); report it plain.
        return self.args[0]

    def __reduce__(self):
        # BaseException pickling re-invokes cls(*args); args holds the
        # formatted message, not the constructor signature.
        return (self.__class__, (self.kind, self.name, self.available))
