"""Subgraph isomorphism (superposition) enumeration.

The paper's subgraph isomorphism is *structure-only*: a query graph ``Q`` is
a subgraph of ``G`` if ``G`` contains a subgraph whose skeleton is isomorphic
to ``Q``'s skeleton (Section 2).  Labels are compared afterwards by the
superimposed distance measure.  This module therefore enumerates
*monomorphisms* — injective mappings from the pattern's vertices to the
target's vertices that preserve adjacency — ignoring labels by default, with
an optional label-compatibility hook used by the exact-match fast paths.

The implementation is a VF2-style backtracking search with:

* candidate ordering by pattern connectivity (always extend from a vertex
  adjacent to the already-mapped frontier when possible),
* degree-based pruning (a pattern vertex cannot map to a target vertex with
  smaller degree),
* optional early termination (``limit``) and a pure existence check.

An :class:`Embedding` records the vertex mapping and exposes helpers to read
off the image subgraph and the superimposed vertex/edge pairs needed by the
distance measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from .graph import LabeledGraph, edge_key

__all__ = [
    "Embedding",
    "find_embeddings",
    "iter_embeddings",
    "count_embeddings",
    "has_embedding",
    "is_subgraph",
    "is_isomorphic",
    "automorphisms",
]

VertexId = Hashable
LabelPredicate = Callable[[LabeledGraph, VertexId, LabeledGraph, VertexId], bool]


@dataclass(frozen=True)
class Embedding:
    """An injective, adjacency-preserving map from a pattern into a target.

    Attributes
    ----------
    mapping:
        Dictionary from pattern vertex id to target vertex id.
    """

    mapping: Dict[VertexId, VertexId]

    def __len__(self) -> int:
        return len(self.mapping)

    def image_vertices(self) -> Tuple[VertexId, ...]:
        """Return the target vertices covered by this embedding."""
        return tuple(self.mapping.values())

    def image_edges(self, pattern: LabeledGraph) -> List[Tuple[VertexId, VertexId]]:
        """Return the target edges that are images of pattern edges."""
        return [
            edge_key(self.mapping[u], self.mapping[v]) for (u, v) in pattern.edges()
        ]

    def image_subgraph(
        self, pattern: LabeledGraph, target: LabeledGraph
    ) -> LabeledGraph:
        """Return the image of the pattern inside the target as a graph.

        Only pattern edges are carried over (the image is a subgraph, not
        necessarily an induced subgraph, matching the paper's definition).
        """
        sub = LabeledGraph(name=target.name)
        for pv, tv in self.mapping.items():
            sub.add_vertex(
                tv,
                label=target.vertex_label(tv),
                weight=target.vertex_weight(tv) or None,
            )
        for (u, v) in pattern.edges():
            tu, tv = self.mapping[u], self.mapping[v]
            sub.add_edge(
                tu,
                tv,
                label=target.edge_label(tu, tv),
                weight=target.edge_weight(tu, tv) or None,
            )
        return sub

    def vertex_pairs(self) -> List[Tuple[VertexId, VertexId]]:
        """Return superimposed ``(pattern vertex, target vertex)`` pairs."""
        return list(self.mapping.items())

    def edge_pairs(
        self, pattern: LabeledGraph
    ) -> List[Tuple[Tuple[VertexId, VertexId], Tuple[VertexId, VertexId]]]:
        """Return superimposed ``(pattern edge, target edge)`` pairs."""
        pairs = []
        for (u, v) in pattern.edges():
            pairs.append(((u, v), edge_key(self.mapping[u], self.mapping[v])))
        return pairs


def _match_order(pattern: LabeledGraph) -> List[VertexId]:
    """Choose a matching order that keeps the mapped frontier connected.

    Starts from a vertex of maximum degree and repeatedly appends the
    unvisited vertex with the most already-ordered neighbors (ties broken by
    degree).  Keeping the frontier connected makes the adjacency-consistency
    check prune aggressively.
    """
    vertices = list(pattern.vertices())
    if not vertices:
        return []
    ordered: List[VertexId] = []
    placed = set()
    remaining = set(vertices)
    while remaining:
        if ordered:
            # Prefer vertices adjacent to what is already ordered.
            def score(v: VertexId) -> Tuple[int, int]:
                adjacent = sum(1 for w in pattern.neighbors(v) if w in placed)
                return (adjacent, pattern.degree(v))

            best = max(remaining, key=score)
        else:
            best = max(remaining, key=pattern.degree)
        ordered.append(best)
        placed.add(best)
        remaining.discard(best)
    return ordered


def iter_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    vertex_compatible: Optional[LabelPredicate] = None,
    limit: Optional[int] = None,
) -> Iterator[Embedding]:
    """Yield monomorphisms from ``pattern`` into ``target``.

    Parameters
    ----------
    pattern:
        The (usually small) graph to embed.
    target:
        The host graph.
    vertex_compatible:
        Optional predicate ``f(pattern, pv, target, tv)`` restricting which
        target vertex a pattern vertex may map to.  The default accepts any
        pair, which is the structure-only semantics of the paper.
    limit:
        If given, stop after yielding this many embeddings.

    Notes
    -----
    Every adjacency-preserving injective mapping is yielded, so embeddings
    that differ only by an automorphism of the pattern appear as distinct
    results.  This is exactly what the fragment index needs: by enumerating
    *all* embeddings of a feature structure, automorphism variants are
    covered on the database side (see ``repro.index.fragment_index``).
    """
    if pattern.num_vertices == 0:
        yield Embedding(mapping={})
        return
    if pattern.num_vertices > target.num_vertices:
        return
    if pattern.num_edges > target.num_edges:
        return

    order = _match_order(pattern)
    target_vertices = list(target.vertices())
    pattern_degrees = {v: pattern.degree(v) for v in pattern.vertices()}
    target_degrees = {v: target.degree(v) for v in target_vertices}

    mapping: Dict[VertexId, VertexId] = {}
    used = set()
    yielded = 0

    # Pre-compute, for each position in the matching order, the already
    # ordered neighbors, so the consistency check only looks at those.
    earlier_neighbors: List[List[VertexId]] = []
    seen_so_far: set = set()
    for v in order:
        earlier_neighbors.append([w for w in pattern.neighbors(v) if w in seen_so_far])
        seen_so_far.add(v)

    def candidates(position: int) -> Sequence[VertexId]:
        pv = order[position]
        anchors = earlier_neighbors[position]
        if anchors:
            # Restrict to neighbors of an already-mapped anchor vertex.
            pool = target.neighbors(mapping[anchors[0]])
        else:
            pool = target_vertices
        result = []
        for tv in pool:
            if tv in used:
                continue
            if target_degrees[tv] < pattern_degrees[pv]:
                continue
            if vertex_compatible is not None and not vertex_compatible(
                pattern, pv, target, tv
            ):
                continue
            ok = True
            for anchor in anchors:
                if not target.has_edge(mapping[anchor], tv):
                    ok = False
                    break
            if ok:
                result.append(tv)
        return result

    def backtrack(position: int) -> Iterator[Embedding]:
        nonlocal yielded
        if position == len(order):
            yielded += 1
            yield Embedding(mapping=dict(mapping))
            return
        pv = order[position]
        for tv in candidates(position):
            mapping[pv] = tv
            used.add(tv)
            yield from backtrack(position + 1)
            del mapping[pv]
            used.discard(tv)
            if limit is not None and yielded >= limit:
                return

    for embedding in backtrack(0):
        yield embedding
        if limit is not None and yielded >= limit:
            return


def find_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    vertex_compatible: Optional[LabelPredicate] = None,
    limit: Optional[int] = None,
) -> List[Embedding]:
    """Return the list of monomorphisms from ``pattern`` into ``target``."""
    return list(
        iter_embeddings(
            pattern, target, vertex_compatible=vertex_compatible, limit=limit
        )
    )


def count_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    vertex_compatible: Optional[LabelPredicate] = None,
) -> int:
    """Return the number of monomorphisms from ``pattern`` into ``target``."""
    return sum(
        1
        for _ in iter_embeddings(
            pattern, target, vertex_compatible=vertex_compatible
        )
    )


def has_embedding(
    pattern: LabeledGraph,
    target: LabeledGraph,
    vertex_compatible: Optional[LabelPredicate] = None,
) -> bool:
    """Return ``True`` if at least one monomorphism exists."""
    for _ in iter_embeddings(
        pattern, target, vertex_compatible=vertex_compatible, limit=1
    ):
        return True
    return False


def is_subgraph(pattern: LabeledGraph, target: LabeledGraph) -> bool:
    """Structure-only subgraph test: ``pattern ⊆ target`` per the paper."""
    return has_embedding(pattern, target)


def is_isomorphic(a: LabeledGraph, b: LabeledGraph) -> bool:
    """Structure-only graph isomorphism test.

    Two graphs are isomorphic when each is a subgraph of the other; for
    equal-sized graphs a single monomorphism check suffices.
    """
    if a.num_vertices != b.num_vertices or a.num_edges != b.num_edges:
        return False
    degree_a = sorted(a.degree(v) for v in a.vertices())
    degree_b = sorted(b.degree(v) for v in b.vertices())
    if degree_a != degree_b:
        return False
    return has_embedding(a, b)


def automorphisms(graph: LabeledGraph) -> List[Embedding]:
    """Return all structure-only automorphisms of ``graph``.

    Automorphisms are monomorphisms from the graph into itself; because the
    vertex counts match, every such mapping is a bijection.
    """
    return find_embeddings(graph, graph)
