"""Graph database container.

The SSSD problem is posed over a *graph database* ``D = {G1, ..., Gn}``.
:class:`GraphDatabase` is a thin, ordered container that assigns each graph
a stable integer identifier (the paper's implementation likewise stores only
graph identifiers in the index, never the graphs themselves), exposes
aggregate statistics used by the experiment reports, and supports JSON
persistence.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .errors import DatasetError
from .graph import LabeledGraph

__all__ = ["GraphDatabase", "DatabaseStats"]


class DatabaseStats:
    """Aggregate statistics of a graph database (Section 7 style report)."""

    def __init__(self, database: "GraphDatabase"):
        sizes_v = [g.num_vertices for g in database]
        sizes_e = [g.num_edges for g in database]
        vertex_labels: Dict[Any, int] = {}
        edge_labels: Dict[Any, int] = {}
        for g in database:
            for v in g.vertices():
                label = g.vertex_label(v)
                vertex_labels[label] = vertex_labels.get(label, 0) + 1
            for (u, v) in g.edges():
                label = g.edge_label(u, v)
                edge_labels[label] = edge_labels.get(label, 0) + 1
        self.num_graphs = len(database)
        self.avg_vertices = sum(sizes_v) / len(sizes_v) if sizes_v else 0.0
        self.avg_edges = sum(sizes_e) / len(sizes_e) if sizes_e else 0.0
        self.max_vertices = max(sizes_v, default=0)
        self.max_edges = max(sizes_e, default=0)
        self.min_vertices = min(sizes_v, default=0)
        self.min_edges = min(sizes_e, default=0)
        self.vertex_label_counts = vertex_labels
        self.edge_label_counts = edge_labels

    def dominant_vertex_label(self) -> Optional[Any]:
        """Return the most frequent vertex label (``None`` for an empty DB)."""
        if not self.vertex_label_counts:
            return None
        return max(self.vertex_label_counts, key=self.vertex_label_counts.get)

    def dominant_edge_label(self) -> Optional[Any]:
        """Return the most frequent edge label (``None`` for an empty DB)."""
        if not self.edge_label_counts:
            return None
        return max(self.edge_label_counts, key=self.edge_label_counts.get)

    def as_dict(self) -> Dict[str, Any]:
        """Return the statistics as a JSON-serializable dictionary."""
        total_v = sum(self.vertex_label_counts.values()) or 1
        total_e = sum(self.edge_label_counts.values()) or 1
        dominant_v = self.dominant_vertex_label()
        dominant_e = self.dominant_edge_label()
        return {
            "num_graphs": self.num_graphs,
            "avg_vertices": round(self.avg_vertices, 2),
            "avg_edges": round(self.avg_edges, 2),
            "max_vertices": self.max_vertices,
            "max_edges": self.max_edges,
            "min_vertices": self.min_vertices,
            "min_edges": self.min_edges,
            "num_vertex_labels": len(self.vertex_label_counts),
            "num_edge_labels": len(self.edge_label_counts),
            "dominant_vertex_label": dominant_v,
            "dominant_vertex_label_share": round(
                self.vertex_label_counts.get(dominant_v, 0) / total_v, 3
            ),
            "dominant_edge_label": dominant_e,
            "dominant_edge_label_share": round(
                self.edge_label_counts.get(dominant_e, 0) / total_e, 3
            ),
        }


class GraphDatabase:
    """An ordered collection of labeled graphs with stable integer ids.

    Examples
    --------
    >>> db = GraphDatabase()
    >>> g = LabeledGraph(name="methane-ish")
    >>> _ = g.add_vertex(0, label="C")
    >>> gid = db.add(g)
    >>> db[gid] is g
    True
    >>> len(db)
    1
    """

    def __init__(self, graphs: Optional[Iterable[LabeledGraph]] = None, name: str = ""):
        self.name = name
        self._graphs: List[LabeledGraph] = []
        if graphs is not None:
            for graph in graphs:
                self.add(graph)

    def add(self, graph: LabeledGraph) -> int:
        """Add a graph and return its integer identifier."""
        if not isinstance(graph, LabeledGraph):
            raise DatasetError(f"expected LabeledGraph, got {type(graph).__name__}")
        self._graphs.append(graph)
        return len(self._graphs) - 1

    def extend(self, graphs: Iterable[LabeledGraph]) -> List[int]:
        """Add several graphs; return their identifiers."""
        return [self.add(graph) for graph in graphs]

    def __len__(self) -> int:
        return len(self._graphs)

    def __iter__(self) -> Iterator[LabeledGraph]:
        return iter(self._graphs)

    def __getitem__(self, graph_id: int) -> LabeledGraph:
        try:
            return self._graphs[graph_id]
        except IndexError as exc:
            raise DatasetError(f"graph id {graph_id} out of range") from exc

    def items(self) -> Iterator[Tuple[int, LabeledGraph]]:
        """Iterate over ``(graph_id, graph)`` pairs."""
        return iter(enumerate(self._graphs))

    def graph_ids(self) -> range:
        """Return the range of valid graph identifiers."""
        return range(len(self._graphs))

    def stats(self) -> DatabaseStats:
        """Return aggregate statistics for reporting."""
        return DatabaseStats(self)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-serializable representation of the database."""
        return {
            "name": self.name,
            "graphs": [graph.to_dict() for graph in self._graphs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GraphDatabase":
        """Rebuild a database from :meth:`to_dict` output."""
        db = cls(name=data.get("name", ""))
        for graph_data in data.get("graphs", []):
            db.add(LabeledGraph.from_dict(graph_data))
        return db

    def save(self, path: Union[str, Path]) -> None:
        """Write the database to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict()), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "GraphDatabase":
        """Load a database previously written by :meth:`save`."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise DatasetError(f"cannot load graph database from {path}: {exc}") from exc
        return cls.from_dict(data)
