"""Graph database container.

The SSSD problem is posed over a *graph database* ``D = {G1, ..., Gn}``.
:class:`GraphDatabase` is a thin, ordered container that assigns each graph
a stable integer identifier (the paper's implementation likewise stores only
graph identifiers in the index, never the graphs themselves), exposes
aggregate statistics used by the experiment reports, and supports JSON
persistence.

The database is *dynamic*: :meth:`GraphDatabase.remove` tombstones a slot
(the identifier is retired, never silently renumbered, so every graph id
stored in an index stays valid), :meth:`GraphDatabase.add` can explicitly
reclaim a tombstoned identifier, and :meth:`GraphDatabase.replace` rebinds a
slot to a new graph.  Every rebinding of a slot bumps that slot's
*revision* (:meth:`revision`) and the database-wide :attr:`generation`
counter; caches keyed by graph id (for example the exact-distance memo
cache of :mod:`repro.search.verify`) include the revision in their keys so
they can never serve a value computed for a previous occupant of the id.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from .errors import DatasetError
from .graph import LabeledGraph

__all__ = ["GraphDatabase", "DatabaseStats"]


class DatabaseStats:
    """Aggregate statistics of a graph database (Section 7 style report)."""

    def __init__(self, database: "GraphDatabase"):
        sizes_v = [g.num_vertices for g in database]
        sizes_e = [g.num_edges for g in database]
        vertex_labels: Dict[Any, int] = {}
        edge_labels: Dict[Any, int] = {}
        for g in database:
            for v in g.vertices():
                label = g.vertex_label(v)
                vertex_labels[label] = vertex_labels.get(label, 0) + 1
            for (u, v) in g.edges():
                label = g.edge_label(u, v)
                edge_labels[label] = edge_labels.get(label, 0) + 1
        self.num_graphs = len(database)
        self.avg_vertices = sum(sizes_v) / len(sizes_v) if sizes_v else 0.0
        self.avg_edges = sum(sizes_e) / len(sizes_e) if sizes_e else 0.0
        self.max_vertices = max(sizes_v, default=0)
        self.max_edges = max(sizes_e, default=0)
        self.min_vertices = min(sizes_v, default=0)
        self.min_edges = min(sizes_e, default=0)
        self.vertex_label_counts = vertex_labels
        self.edge_label_counts = edge_labels

    def dominant_vertex_label(self) -> Optional[Any]:
        """Return the most frequent vertex label (``None`` for an empty DB)."""
        if not self.vertex_label_counts:
            return None
        return max(self.vertex_label_counts, key=self.vertex_label_counts.get)

    def dominant_edge_label(self) -> Optional[Any]:
        """Return the most frequent edge label (``None`` for an empty DB)."""
        if not self.edge_label_counts:
            return None
        return max(self.edge_label_counts, key=self.edge_label_counts.get)

    def as_dict(self) -> Dict[str, Any]:
        """Return the statistics as a JSON-serializable dictionary."""
        total_v = sum(self.vertex_label_counts.values()) or 1
        total_e = sum(self.edge_label_counts.values()) or 1
        dominant_v = self.dominant_vertex_label()
        dominant_e = self.dominant_edge_label()
        return {
            "num_graphs": self.num_graphs,
            "avg_vertices": round(self.avg_vertices, 2),
            "avg_edges": round(self.avg_edges, 2),
            "max_vertices": self.max_vertices,
            "max_edges": self.max_edges,
            "min_vertices": self.min_vertices,
            "min_edges": self.min_edges,
            "num_vertex_labels": len(self.vertex_label_counts),
            "num_edge_labels": len(self.edge_label_counts),
            "dominant_vertex_label": dominant_v,
            "dominant_vertex_label_share": round(
                self.vertex_label_counts.get(dominant_v, 0) / total_v, 3
            ),
            "dominant_edge_label": dominant_e,
            "dominant_edge_label_share": round(
                self.edge_label_counts.get(dominant_e, 0) / total_e, 3
            ),
        }


class GraphDatabase:
    """An ordered collection of labeled graphs with stable integer ids.

    Identifiers are append-ordered and *stable*: removing a graph
    tombstones its slot instead of renumbering the rest, so ids recorded in
    a fragment index stay valid across mutations.  A tombstoned id can be
    reclaimed explicitly (``add(graph, graph_id=...)``); every rebinding of
    a slot bumps its :meth:`revision`.

    Examples
    --------
    >>> db = GraphDatabase()
    >>> g = LabeledGraph(name="methane-ish")
    >>> _ = g.add_vertex(0, label="C")
    >>> gid = db.add(g)
    >>> db[gid] is g
    True
    >>> len(db)
    1
    """

    def __init__(self, graphs: Optional[Iterable[LabeledGraph]] = None, name: str = ""):
        self.name = name
        self._graphs: List[Optional[LabeledGraph]] = []
        self._revisions: List[int] = []
        self._num_live = 0
        self._generation = 0
        # WAL position the persisted form of this database folds in
        # (0 = not WAL-managed).  The engine's replay-on-load consults it
        # to decide which committed batches this copy already contains.
        self.wal_position = 0
        if graphs is not None:
            for graph in graphs:
                self.add(graph)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, graph: LabeledGraph, graph_id: Optional[int] = None) -> int:
        """Add a graph and return its integer identifier.

        ``graph_id=None`` (the default) appends at a fresh identifier.
        Passing a tombstoned identifier reclaims that slot — the reuse the
        revision counters exist for; passing a live identifier raises
        (use :meth:`replace` to rebind a live slot on purpose).
        """
        if not isinstance(graph, LabeledGraph):
            raise DatasetError(f"expected LabeledGraph, got {type(graph).__name__}")
        if graph_id is None:
            self._graphs.append(graph)
            self._revisions.append(0)
            graph_id = len(self._graphs) - 1
        else:
            if not 0 <= graph_id < len(self._graphs):
                raise DatasetError(
                    f"cannot reclaim graph id {graph_id}: not a retired identifier"
                )
            if self._graphs[graph_id] is not None:
                raise DatasetError(
                    f"graph id {graph_id} is live; remove or replace it instead"
                )
            self._graphs[graph_id] = graph
            self._revisions[graph_id] += 1
        self._num_live += 1
        self._generation += 1
        return graph_id

    def extend(self, graphs: Iterable[LabeledGraph]) -> List[int]:
        """Add several graphs; return their identifiers."""
        return [self.add(graph) for graph in graphs]

    def remove(self, graph_id: int) -> LabeledGraph:
        """Tombstone a live graph; its identifier is retired, not reused.

        Returns the removed graph.  The slot's revision is bumped
        immediately, so any cache entry keyed by ``(graph_id, revision)``
        dies with the removal rather than surviving until the id is
        reclaimed.
        """
        graph = self[graph_id]  # raises DatasetError on dead/out-of-range ids
        self._graphs[graph_id] = None
        self._revisions[graph_id] += 1
        self._num_live -= 1
        self._generation += 1
        return graph

    def replace(self, graph_id: int, graph: LabeledGraph) -> LabeledGraph:
        """Rebind a live slot to a new graph; returns the previous graph.

        .. warning::
            This mutates only the database.  Any fragment index built over
            it still holds the previous occupant's posting-list entries and
            will filter (and possibly prune) graph ``graph_id`` based on
            them.  To rebind a slot under an index, go through the engine —
            ``Engine.remove_graphs([gid])`` followed by
            ``Engine.add_graphs([graph], reuse_ids=True)`` — which keeps
            database and index in lock-step.  The revision bump here only
            makes *distance caches* safe, not the index itself.
        """
        if not isinstance(graph, LabeledGraph):
            raise DatasetError(f"expected LabeledGraph, got {type(graph).__name__}")
        previous = self[graph_id]
        self._graphs[graph_id] = graph
        self._revisions[graph_id] += 1
        self._generation += 1
        return previous

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of *live* graphs (tombstoned slots do not count)."""
        return self._num_live

    def __iter__(self) -> Iterator[LabeledGraph]:
        return (graph for graph in self._graphs if graph is not None)

    def __getitem__(self, graph_id: int) -> LabeledGraph:
        try:
            graph = self._graphs[graph_id]
        except (IndexError, TypeError) as exc:
            raise DatasetError(f"graph id {graph_id} out of range") from exc
        if graph_id < 0:
            raise DatasetError(f"graph id {graph_id} out of range")
        if graph is None:
            raise DatasetError(f"graph id {graph_id} has been removed")
        return graph

    def __contains__(self, graph_id: object) -> bool:
        return (
            isinstance(graph_id, int)
            and 0 <= graph_id < len(self._graphs)
            and self._graphs[graph_id] is not None
        )

    def items(self) -> Iterator[Tuple[int, LabeledGraph]]:
        """Iterate over live ``(graph_id, graph)`` pairs."""
        return (
            (graph_id, graph)
            for graph_id, graph in enumerate(self._graphs)
            if graph is not None
        )

    def graph_ids(self) -> List[int]:
        """Return the live graph identifiers in ascending order."""
        return [gid for gid, graph in enumerate(self._graphs) if graph is not None]

    def removed_ids(self) -> List[int]:
        """Return the tombstoned identifiers in ascending order."""
        return [gid for gid, graph in enumerate(self._graphs) if graph is None]

    @property
    def id_bound(self) -> int:
        """One past the highest identifier ever assigned (live or retired)."""
        return len(self._graphs)

    @property
    def generation(self) -> int:
        """Counter bumped by every mutation (add, remove, replace)."""
        return self._generation

    def revision(self, graph_id: int) -> int:
        """Number of times the slot ``graph_id`` has been rebound.

        ``0`` for a freshly appended graph; bumped by every remove,
        replace, or id reclaim.  Out-of-range ids report revision ``0`` so
        callers probing ids beyond this database (e.g. an index built over
        a larger one) need no special casing.
        """
        if 0 <= graph_id < len(self._revisions):
            return self._revisions[graph_id]
        return 0

    def stats(self) -> DatabaseStats:
        """Return aggregate statistics for reporting."""
        return DatabaseStats(self)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self, wal_position: Optional[int] = None) -> Dict[str, Any]:
        """Return a JSON-serializable representation of the database.

        Tombstoned slots serialize as ``null`` entries so identifiers (and
        therefore every graph id stored in an index) survive a round-trip;
        per-slot revisions and the generation counter ride along whenever
        the database has ever been mutated.  ``wal_position`` stamps the
        write-ahead-log position this snapshot folds in (the engine's
        checkpoint passes it); files written without one are position 0.
        """
        data: Dict[str, Any] = {
            "name": self.name,
            "graphs": [
                graph.to_dict() if graph is not None else None
                for graph in self._graphs
            ],
        }
        if any(self._revisions) or self._num_live != len(self._graphs):
            data["revisions"] = list(self._revisions)
            data["generation"] = self._generation
        if wal_position is not None:
            data["wal"] = {"committed_lsn": int(wal_position)}
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GraphDatabase":
        """Rebuild a database from :meth:`to_dict` output.

        Files written before dynamic updates existed (no ``null`` slots,
        no ``revisions``) load unchanged.
        """
        db = cls(name=data.get("name", ""))
        for graph_data in data.get("graphs", []):
            if graph_data is None:
                db._graphs.append(None)
                db._revisions.append(1)
            else:
                db._graphs.append(LabeledGraph.from_dict(graph_data))
                db._revisions.append(0)
                db._num_live += 1
        revisions = data.get("revisions")
        if revisions is not None:
            db._revisions = [int(revision) for revision in revisions]
        db._generation = int(data.get("generation", 0))
        wal = data.get("wal")
        if isinstance(wal, dict):
            db.wal_position = int(wal.get("committed_lsn", 0))
        return db

    def save(
        self, path: Union[str, Path], wal_position: Optional[int] = None
    ) -> None:
        """Write the database to a JSON file (atomic replace).

        The file is replaced via write-temp + fsync + rename so a crash
        mid-save leaves the previous copy intact rather than a torn file.
        ``wal_position`` stamps the WAL position the snapshot folds in.
        """
        from ..store.atomic import atomic_write_text

        atomic_write_text(
            Path(path), json.dumps(self.to_dict(wal_position=wal_position))
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "GraphDatabase":
        """Load a database previously written by :meth:`save`."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise DatasetError(f"cannot load graph database from {path}: {exc}") from exc
        return cls.from_dict(data)
