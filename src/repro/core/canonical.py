"""Canonical representations of (labeled) graphs.

Section 4 of the paper requires a representation function ``s`` such that
``s(G) == s(G')`` exactly when ``G`` and ``G'`` are isomorphic, so that
fragments can be hashed into structural equivalence classes.  The paper
mentions two options: the minimum adjacency-matrix code and the DFS coding
of gSpan.  This module implements both:

* :func:`min_dfs_code` — the gSpan-style minimum DFS code, computed by the
  standard greedy minimal-extension procedure over all embeddings of the
  current minimal prefix.  This is the production code path.
* :func:`adjacency_code` — the brute-force minimum adjacency-matrix code
  obtained by trying every vertex permutation.  Exponential, but an
  independent oracle used by the test-suite to validate the DFS code on
  small graphs.

Both functions accept ``use_vertex_labels`` / ``use_edge_labels`` switches.
The *structure code* (labels ignored) is what keys the fragment index's hash
table; the fully labeled code is used for deduplication in mining.
"""

from __future__ import annotations

from itertools import permutations
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from ..perf import GLOBAL_COUNTERS, MemoCache, skeleton_signature
from .graph import DEFAULT_LABEL, LabeledGraph, edge_key

__all__ = [
    "DFSEdge",
    "CanonicalCode",
    "min_dfs_code",
    "min_dfs_vertex_order",
    "structure_code",
    "labeled_code",
    "code_to_graph",
    "adjacency_code",
    "structure_code_cache",
]

# A DFS code entry: (from_index, to_index, from_label, edge_label, to_label).
DFSEdge = Tuple[int, int, Any, Any, Any]
# A canonical code: tuple of DFS edges, or for edgeless graphs a tuple of
# vertex labels marked with a leading sentinel.
CanonicalCode = Tuple[Any, ...]

_VERTEX_ONLY_MARKER = "__vertices__"


def _label_sort_key(label: Any) -> Tuple[str, str]:
    """Total order over arbitrary hashable labels (type name, then repr)."""
    return (type(label).__name__, repr(label))


class _Embedding:
    """One DFS traversal prefix consistent with the current minimal code."""

    __slots__ = ("vertex_of", "index_of", "used_edges", "rightmost_path")

    def __init__(
        self,
        vertex_of: List[Hashable],
        index_of: Dict[Hashable, int],
        used_edges: frozenset,
        rightmost_path: Tuple[int, ...],
    ):
        self.vertex_of = vertex_of
        self.index_of = index_of
        self.used_edges = used_edges
        self.rightmost_path = rightmost_path


def _vertex_label(graph: LabeledGraph, vertex: Hashable, use_labels: bool) -> Any:
    return graph.vertex_label(vertex) if use_labels else DEFAULT_LABEL


def _edge_label(
    graph: LabeledGraph, u: Hashable, v: Hashable, use_labels: bool
) -> Any:
    return graph.edge_label(u, v) if use_labels else DEFAULT_LABEL


def _extension_sort_key(entry: Tuple[Tuple, DFSEdge]) -> Tuple:
    """Sort key implementing the gSpan DFS-code extension order.

    Backward extensions precede forward extensions; among backward
    extensions smaller destination index wins; among forward extensions the
    one growing from the deeper rightmost-path vertex wins; label components
    break remaining ties.
    """
    return entry[0]


def _min_code_connected(
    graph: LabeledGraph, use_vertex_labels: bool, use_edge_labels: bool
) -> Tuple[CanonicalCode, List[Hashable]]:
    """Minimum DFS code of a connected graph plus one witnessing vertex order."""
    vertices = list(graph.vertices())
    if not vertices:
        return ((_VERTEX_ONLY_MARKER,), [])
    if graph.num_edges == 0:
        if len(vertices) != 1:
            raise ValueError("edgeless connected graph must have a single vertex")
        v = vertices[0]
        label = _vertex_label(graph, v, use_vertex_labels)
        return ((_VERTEX_ONLY_MARKER, label), [v])

    # --- step 0: minimal initial edge ------------------------------------
    best_first: Optional[Tuple] = None
    initial: List[Tuple[Tuple, _Embedding, DFSEdge]] = []
    for (u, v) in graph.edges():
        for a, b in ((u, v), (v, u)):
            la = _vertex_label(graph, a, use_vertex_labels)
            lb = _vertex_label(graph, b, use_vertex_labels)
            le = _edge_label(graph, a, b, use_edge_labels)
            key = (
                _label_sort_key(la),
                _label_sort_key(le),
                _label_sort_key(lb),
            )
            edge_entry: DFSEdge = (0, 1, la, le, lb)
            embedding = _Embedding(
                vertex_of=[a, b],
                index_of={a: 0, b: 1},
                used_edges=frozenset({edge_key(a, b)}),
                rightmost_path=(0, 1),
            )
            if best_first is None or key < best_first:
                best_first = key
                initial = [(key, embedding, edge_entry)]
            elif key == best_first:
                initial.append((key, embedding, edge_entry))

    assert initial, "graph with edges must yield an initial extension"
    code: List[DFSEdge] = [initial[0][2]]
    embeddings: List[_Embedding] = [entry[1] for entry in initial]

    # --- grow one edge at a time ------------------------------------------
    total_edges = graph.num_edges
    while len(code) < total_edges:
        best_key: Optional[Tuple] = None
        best_entries: List[Tuple[_Embedding, DFSEdge]] = []

        for emb in embeddings:
            rightmost_index = emb.rightmost_path[-1]
            rightmost_vertex = emb.vertex_of[rightmost_index]

            # Backward extensions: rightmost vertex -> vertex on the
            # rightmost path (excluding its DFS parent, whose edge is used).
            for path_index in emb.rightmost_path[:-1]:
                path_vertex = emb.vertex_of[path_index]
                if not graph.has_edge(rightmost_vertex, path_vertex):
                    continue
                ekey = edge_key(rightmost_vertex, path_vertex)
                if ekey in emb.used_edges:
                    continue
                le = _edge_label(
                    graph, rightmost_vertex, path_vertex, use_edge_labels
                )
                li = _vertex_label(graph, rightmost_vertex, use_vertex_labels)
                lj = _vertex_label(graph, path_vertex, use_vertex_labels)
                sort_key = (0, path_index, _label_sort_key(le))
                entry: DFSEdge = (rightmost_index, path_index, li, le, lj)
                if best_key is None or sort_key < best_key:
                    best_key = sort_key
                    best_entries = [(emb, entry)]
                elif sort_key == best_key:
                    best_entries.append((emb, entry))

            # Forward extensions: from a rightmost-path vertex to an
            # unvisited vertex; growing from deeper vertices is preferred.
            new_index = len(emb.vertex_of)
            for path_index in reversed(emb.rightmost_path):
                path_vertex = emb.vertex_of[path_index]
                for neighbor in graph.neighbors(path_vertex):
                    if neighbor in emb.index_of:
                        continue
                    le = _edge_label(graph, path_vertex, neighbor, use_edge_labels)
                    li = _vertex_label(graph, path_vertex, use_vertex_labels)
                    lj = _vertex_label(graph, neighbor, use_vertex_labels)
                    sort_key = (
                        1,
                        -path_index,
                        _label_sort_key(le),
                        _label_sort_key(lj),
                    )
                    entry = (path_index, new_index, li, le, lj)
                    if best_key is None or sort_key < best_key:
                        best_key = sort_key
                        best_entries = [(emb, entry)]
                    elif sort_key == best_key:
                        best_entries.append((emb, entry))

        assert best_entries, "connected graph must always have an extension"
        chosen_entry = best_entries[0][1]
        code.append(chosen_entry)

        # Advance every embedding that realises the chosen entry.  Distinct
        # (embedding, target vertex) realisations become separate embeddings.
        next_embeddings: List[_Embedding] = []
        seen_states = set()
        from_index, to_index = chosen_entry[0], chosen_entry[1]
        is_forward = to_index > from_index
        for emb, entry in best_entries:
            if entry != chosen_entry:
                continue
            rightmost_index = emb.rightmost_path[-1]
            rightmost_vertex = emb.vertex_of[rightmost_index]
            if not is_forward:
                path_vertex = emb.vertex_of[to_index]
                new_used = emb.used_edges | {
                    edge_key(rightmost_vertex, path_vertex)
                }
                state = (tuple(emb.vertex_of), new_used)
                if state in seen_states:
                    continue
                seen_states.add(state)
                next_embeddings.append(
                    _Embedding(
                        vertex_of=list(emb.vertex_of),
                        index_of=dict(emb.index_of),
                        used_edges=new_used,
                        rightmost_path=emb.rightmost_path,
                    )
                )
            else:
                source_vertex = emb.vertex_of[from_index]
                for neighbor in graph.neighbors(source_vertex):
                    if neighbor in emb.index_of:
                        continue
                    le = _edge_label(graph, source_vertex, neighbor, use_edge_labels)
                    lj = _vertex_label(graph, neighbor, use_vertex_labels)
                    if le != chosen_entry[3] or lj != chosen_entry[4]:
                        continue
                    new_vertex_of = list(emb.vertex_of) + [neighbor]
                    new_index_of = dict(emb.index_of)
                    new_index_of[neighbor] = to_index
                    new_used = emb.used_edges | {
                        edge_key(source_vertex, neighbor)
                    }
                    # The rightmost path is truncated at the forward source
                    # and extended with the new vertex.
                    truncated = tuple(
                        idx
                        for idx in emb.rightmost_path
                        if idx <= from_index
                    )
                    new_path = truncated + (to_index,)
                    state = (tuple(new_vertex_of), new_used)
                    if state in seen_states:
                        continue
                    seen_states.add(state)
                    next_embeddings.append(
                        _Embedding(
                            vertex_of=new_vertex_of,
                            index_of=new_index_of,
                            used_edges=new_used,
                            rightmost_path=new_path,
                        )
                    )
        embeddings = next_embeddings

    witness = embeddings[0].vertex_of
    return (tuple(code), witness)


def _split_components(graph: LabeledGraph) -> List[LabeledGraph]:
    return [graph.subgraph(component) for component in graph.connected_components()]


def min_dfs_code(
    graph: LabeledGraph,
    use_vertex_labels: bool = True,
    use_edge_labels: bool = True,
) -> CanonicalCode:
    """Return the minimum DFS code of ``graph``.

    Isomorphic graphs (with matching labels, when enabled) produce identical
    codes and non-isomorphic graphs produce different codes.  Disconnected
    graphs are encoded as the sorted tuple of their components' codes.
    """
    components = _split_components(graph)
    if len(components) <= 1:
        target = components[0] if components else graph
        code, _ = _min_code_connected(target, use_vertex_labels, use_edge_labels)
        return code
    codes = [
        _min_code_connected(component, use_vertex_labels, use_edge_labels)[0]
        for component in components
    ]
    codes.sort(key=repr)
    return ("__components__",) + tuple(codes)


def min_dfs_vertex_order(
    graph: LabeledGraph,
    use_vertex_labels: bool = True,
    use_edge_labels: bool = True,
) -> List[Hashable]:
    """Return one vertex order witnessing the minimum DFS code.

    Index ``i`` of the returned list is the vertex assigned DFS index ``i``.
    Only defined for connected graphs.
    """
    if not graph.is_connected():
        raise ValueError("vertex order is only defined for connected graphs")
    _, witness = _min_code_connected(graph, use_vertex_labels, use_edge_labels)
    return witness


#: memo cache for :func:`structure_code`, keyed by skeleton content.  The
#: minimum-DFS-code computation explores every embedding of the minimal
#: prefix, so it dwarfs the cost of the signature key; mining and fragment
#: enumeration canonicalize the same (sub)graphs over and over.
_STRUCTURE_CODE_CACHE = MemoCache(
    "structure_code", maxsize=8192, counters=GLOBAL_COUNTERS
)


def structure_code_cache() -> MemoCache:
    """Return the process-wide structure-code memo cache (for stats/tests)."""
    return _STRUCTURE_CODE_CACHE


def structure_code(graph: LabeledGraph) -> CanonicalCode:
    """Canonical code of the *skeleton* (labels ignored).

    This is the hash-table key for structural equivalence classes
    (Definition 4).  Results are memoized on the skeleton's content
    signature; the cache honours the global ``"caches"`` optimization flag.
    """
    key = skeleton_signature(graph)
    cached = _STRUCTURE_CODE_CACHE.get(key)
    if cached is not MemoCache.MISS:
        return cached
    code = min_dfs_code(graph, use_vertex_labels=False, use_edge_labels=False)
    _STRUCTURE_CODE_CACHE.put(key, code)
    return code


def labeled_code(graph: LabeledGraph) -> CanonicalCode:
    """Canonical code including vertex and edge labels."""
    return min_dfs_code(graph, use_vertex_labels=True, use_edge_labels=True)


def code_to_graph(code: CanonicalCode) -> LabeledGraph:
    """Reconstruct a graph from a connected-graph canonical code.

    The reconstructed graph uses the DFS indices ``0..n-1`` as vertex ids,
    so it is the *canonical skeleton* of the equivalence class: its vertex
    and edge orders are exactly the orders used by the fragment sequencer.
    """
    graph = LabeledGraph()
    if code and code[0] == _VERTEX_ONLY_MARKER:
        for offset, label in enumerate(code[1:]):
            graph.add_vertex(offset, label=label)
        return graph
    if code and code[0] == "__components__":
        raise ValueError("cannot rebuild a disconnected code into one skeleton")
    for (i, j, li, le, lj) in code:
        if i not in graph:
            graph.add_vertex(i, label=li)
        if j not in graph:
            graph.add_vertex(j, label=lj)
        graph.add_edge(i, j, label=le)
    return graph


def adjacency_code(
    graph: LabeledGraph,
    use_vertex_labels: bool = True,
    use_edge_labels: bool = True,
) -> CanonicalCode:
    """Brute-force canonical code (minimum adjacency string over permutations).

    Exponential in the number of vertices; intended for validation on small
    graphs only (the test-suite uses it as an oracle for
    :func:`min_dfs_code`).
    """
    vertices = list(graph.vertices())
    if len(vertices) > 9:
        raise ValueError("adjacency_code is a test oracle for graphs with <= 9 vertices")
    best: Optional[Tuple] = None
    for perm in permutations(vertices):
        index_of = {v: i for i, v in enumerate(perm)}
        rows: List[Tuple] = []
        if use_vertex_labels:
            rows.append(
                tuple(_label_sort_key(graph.vertex_label(v)) for v in perm)
            )
        cells: List[Tuple] = []
        for i in range(len(perm)):
            for j in range(i + 1, len(perm)):
                u, v = perm[i], perm[j]
                if graph.has_edge(u, v):
                    label = (
                        graph.edge_label(u, v) if use_edge_labels else DEFAULT_LABEL
                    )
                    cells.append((1, _label_sort_key(label)))
                else:
                    cells.append((0, ("", "")))
        candidate = (tuple(rows), tuple(cells))
        if best is None or candidate < best:
            best = candidate
    return ("__adjacency__", best)
