"""Minimum superimposed distance (Definition 1) and verification operators.

Given a query graph ``Q``, a target graph ``G`` and a decomposable distance
measure, the minimum superimposed distance is

```
d(Q, G) = min over monomorphisms f: Q -> G of cost(f)
```

and ``inf`` when no monomorphism exists (the paper writes ``d(g, G) = ∞``
when ``g ⊄ G``).  The candidate verification step of PIS evaluates exactly
this quantity — with a threshold so the search can stop as soon as a
superposition within ``sigma`` is found.

The implementation is a branch-and-bound backtracking search: the partial
superposition cost is accumulated as vertices are mapped (vertex cost when a
vertex is placed, edge cost when both endpoints of a query edge are placed)
and a branch is abandoned as soon as the partial cost exceeds the current
bound.  Costs are non-negative for both paper measures, so partial cost is a
valid lower bound of the full cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..perf import optimizations_enabled
from .distance import DistanceMeasure
from .graph import LabeledGraph
from .isomorphism import Embedding, _match_order

__all__ = [
    "SuperpositionResult",
    "minimum_superimposed_distance",
    "best_superposition",
    "within_distance",
    "graph_pair_distance",
    "INFINITE_DISTANCE",
]

#: Distance reported when the query structure is not contained in the target.
INFINITE_DISTANCE = math.inf


@dataclass(frozen=True)
class SuperpositionResult:
    """Result of a minimum superimposed distance computation.

    Attributes
    ----------
    distance:
        The minimum superimposed distance (``inf`` if no superposition).
    embedding:
        A best superposition achieving ``distance`` (``None`` if none exists,
        or if the search stopped early at a threshold and only the bound is
        needed).
    explored:
        Number of complete superpositions examined (diagnostics).
    early_exit:
        ``True`` when the search stopped before exhausting the branch-and-
        bound tree — either because ``stop_at_threshold`` was requested, or
        because a superposition matching ``known_lower_bound`` proved the
        minimum had been reached.
    nodes_expanded:
        Number of partial placements the search descended into (every
        accepted candidate at every position).  Together with ``explored``
        this makes pruning power observable: tighter bounds expand fewer
        nodes for the same answer.
    """

    distance: float
    embedding: Optional[Embedding]
    explored: int = 0
    early_exit: bool = False
    nodes_expanded: int = 0

    @property
    def exists(self) -> bool:
        """Return ``True`` if at least one superposition exists."""
        return self.distance != INFINITE_DISTANCE


def best_superposition(
    query: LabeledGraph,
    target: LabeledGraph,
    measure: DistanceMeasure,
    threshold: Optional[float] = None,
    stop_at_threshold: bool = False,
    known_lower_bound: Optional[float] = None,
    use_kernel: Optional[bool] = None,
) -> SuperpositionResult:
    """Find the superposition of ``query`` in ``target`` with minimum cost.

    Parameters
    ----------
    query, target:
        Pattern and host graphs.
    measure:
        Decomposable superimposed distance measure.
    threshold:
        If given, branches whose partial cost exceeds ``threshold`` are
        pruned.  The returned distance is exact whenever it is
        ``<= threshold``; otherwise it is reported as ``inf``.
    stop_at_threshold:
        If ``True`` the search returns as soon as *any* superposition with
        cost ``<= threshold`` is found (used by the boolean verification
        :func:`within_distance`).  The returned distance is then an upper
        bound, not necessarily the minimum.
    known_lower_bound:
        A proven lower bound on the true distance (e.g. the partition-based
        bound of Eq. 2 computed during filtering).  The search stops as soon
        as a complete superposition with cost ``<= known_lower_bound`` is
        found: since no superposition can cost less than the bound, that
        superposition is provably minimal and the returned distance is still
        exact.  Passing a value that is *not* a true lower bound can make
        the result an upper bound instead of the minimum.
    use_kernel:
        ``True`` forces the array kernel of :mod:`repro.core.kernel`,
        ``False`` forces the legacy recursive search, ``None`` (default)
        follows the global ``"kernel"`` optimization flag.  The kernel is
        byte-identical in distances; when it cannot run (numpy missing,
        oversized target, measure without cost tables) the recursive path
        is used regardless.

    Returns
    -------
    SuperpositionResult
        The minimum distance, a witnessing embedding, the number of
        complete superpositions explored, and whether the search exited
        early.
    """
    if query.num_vertices == 0:
        return SuperpositionResult(distance=0.0, embedding=Embedding({}), explored=1)
    if (
        query.num_vertices > target.num_vertices
        or query.num_edges > target.num_edges
    ):
        return SuperpositionResult(distance=INFINITE_DISTANCE, embedding=None)

    if use_kernel is None:
        use_kernel = optimizations_enabled("kernel")
    if use_kernel:
        from . import kernel as _kernel  # lazy: kernel imports our result type

        result = _kernel.kernel_best_superposition(
            query,
            target,
            measure,
            threshold=threshold,
            stop_at_threshold=stop_at_threshold,
            known_lower_bound=known_lower_bound,
        )
        if result is not None:
            return result

    order = _match_order(query)
    position_of = {v: i for i, v in enumerate(order)}

    # Edges are charged at the position where their *second* endpoint is
    # mapped, so the partial cost is monotone along a branch.
    edges_at_position: List[List[Tuple[Hashable, Hashable]]] = [
        [] for _ in order
    ]
    for (u, v) in query.edges():
        position = max(position_of[u], position_of[v])
        edges_at_position[position].append((u, v))

    earlier_neighbors: List[List[Hashable]] = []
    seen: set = set()
    for v in order:
        earlier_neighbors.append([w for w in query.neighbors(v) if w in seen])
        seen.add(v)

    query_degrees = {v: query.degree(v) for v in query.vertices()}
    target_degrees = {v: target.degree(v) for v in target.vertices()}
    target_vertices = list(target.vertices())

    best_cost = INFINITE_DISTANCE
    best_mapping: Optional[Dict[Hashable, Hashable]] = None
    explored = 0
    nodes_expanded = 0
    bound = threshold if threshold is not None else INFINITE_DISTANCE

    mapping: Dict[Hashable, Hashable] = {}
    used: set = set()
    finished = False

    def backtrack(position: int, cost: float) -> None:
        nonlocal best_cost, best_mapping, explored, nodes_expanded, finished
        if finished:
            return
        if position == len(order):
            explored += 1
            if cost < best_cost:
                best_cost = cost
                best_mapping = dict(mapping)
                if stop_at_threshold and threshold is not None and cost <= threshold:
                    finished = True
                # A complete superposition at (or below) a proven lower bound
                # cannot be improved on: the minimum has been reached.
                if known_lower_bound is not None and cost <= known_lower_bound:
                    finished = True
            return

        qv = order[position]
        anchors = earlier_neighbors[position]
        if anchors:
            # Draw the candidate pool from the mapped anchor with the
            # smallest neighborhood: every anchor's neighborhood is a valid
            # pool (the adjacency check below covers the rest), so the
            # smallest one gives strictly fewer candidates to scan.
            pool_anchor = min(anchors, key=lambda a: target_degrees[mapping[a]])
            pool = target.neighbors(mapping[pool_anchor])
        else:
            pool = target_vertices
        for tv in pool:
            if tv in used:
                continue
            if target_degrees[tv] < query_degrees[qv]:
                continue
            consistent = True
            for anchor in anchors:
                if not target.has_edge(mapping[anchor], tv):
                    consistent = False
                    break
            if not consistent:
                continue

            step_cost = 0.0
            if measure.include_vertices:
                step_cost += measure.vertex_cost(query, qv, target, tv)
            if measure.include_edges:
                for (a, b) in edges_at_position[position]:
                    ta = tv if a == qv else mapping[a]
                    tb = tv if b == qv else mapping[b]
                    step_cost += measure.edge_cost(query, (a, b), target, (ta, tb))

            new_cost = cost + step_cost
            # Prune against both the best solution so far and the caller's
            # threshold; costs are non-negative so the partial cost is a
            # lower bound on any completion.
            if new_cost > bound or new_cost >= best_cost:
                continue
            nodes_expanded += 1
            mapping[qv] = tv
            used.add(tv)
            backtrack(position + 1, new_cost)
            del mapping[qv]
            used.discard(tv)
            if finished:
                return

    backtrack(0, 0.0)

    if best_mapping is None:
        return SuperpositionResult(
            distance=INFINITE_DISTANCE,
            embedding=None,
            explored=explored,
            nodes_expanded=nodes_expanded,
        )
    return SuperpositionResult(
        distance=best_cost,
        embedding=Embedding(best_mapping),
        explored=explored,
        early_exit=finished,
        nodes_expanded=nodes_expanded,
    )


def minimum_superimposed_distance(
    query: LabeledGraph,
    target: LabeledGraph,
    measure: DistanceMeasure,
    threshold: Optional[float] = None,
    use_kernel: Optional[bool] = None,
) -> float:
    """Return ``d(query, target)`` under ``measure`` (Definition 1).

    When ``threshold`` is given the result is exact if it does not exceed
    the threshold; otherwise ``inf`` is returned (sufficient for SSSD).
    """
    return best_superposition(
        query, target, measure, threshold=threshold, use_kernel=use_kernel
    ).distance


def within_distance(
    query: LabeledGraph,
    target: LabeledGraph,
    measure: DistanceMeasure,
    sigma: float,
    use_kernel: Optional[bool] = None,
) -> bool:
    """Return ``True`` if ``d(query, target) <= sigma`` (verification test)."""
    result = best_superposition(
        query,
        target,
        measure,
        threshold=sigma,
        stop_at_threshold=True,
        use_kernel=use_kernel,
    )
    return result.distance <= sigma


def graph_pair_distance(
    a: LabeledGraph,
    b: LabeledGraph,
    measure: DistanceMeasure,
    use_kernel: Optional[bool] = None,
) -> float:
    """Distance between two graphs with identical structure, ``d(a, b)``.

    This is the quantity the per-class indexes answer range queries over:
    both graphs belong to the same structural equivalence class, and the
    distance is the minimum cost over all isomorphisms between them.
    """
    if a.num_vertices != b.num_vertices or a.num_edges != b.num_edges:
        return INFINITE_DISTANCE
    return best_superposition(a, b, measure, use_kernel=use_kernel).distance
