"""Command-line interface for the PIS library.

Subcommands
-----------
``generate``
    Generate a synthetic chemical-like database and write it to JSON.
``index``
    Build a fragment index over a database file and save it to JSON.
``query``
    Answer SSSD queries against a database + index, comparing PIS with the
    baselines.
``stats``
    Print database / index statistics.
``experiments``
    Regenerate the EXPERIMENTS.md report (same as
    ``python -m repro.experiments.run_all``).

Example session::

    pis generate --count 200 --output db.json
    pis index --database db.json --max-edges 5 --output index.json
    pis query --database db.json --index index.json --edges 12 --sigma 2
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .core.database import GraphDatabase
from .core.distance import default_edge_mutation_distance
from .datasets.generator import generate_chemical_database
from .datasets.queries import QueryWorkload
from .index.fragment_index import FragmentIndex
from .index.persistence import load_index, save_index
from .mining.exhaustive import ExhaustiveFeatureSelector
from .search.baselines import NaiveSearch, TopoPruneSearch
from .search.pis import PISearch

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``pis`` command."""
    parser = argparse.ArgumentParser(
        prog="pis",
        description="Partition-based graph index and search (ICDE 2006 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic database")
    generate.add_argument("--count", type=int, default=200, help="number of graphs")
    generate.add_argument("--seed", type=int, default=7, help="generator seed")
    generate.add_argument("--output", type=Path, required=True, help="output JSON path")

    index = subparsers.add_parser("index", help="build a fragment index")
    index.add_argument("--database", type=Path, required=True, help="database JSON path")
    index.add_argument("--max-edges", type=int, default=4, help="max fragment size")
    index.add_argument("--min-support", type=float, default=0.08, help="feature support")
    index.add_argument("--max-features", type=int, default=250, help="feature cap")
    index.add_argument("--backend", default="trie", help="per-class backend")
    index.add_argument("--output", type=Path, required=True, help="output JSON path")

    query = subparsers.add_parser("query", help="run SSSD queries")
    query.add_argument("--database", type=Path, required=True, help="database JSON path")
    query.add_argument("--index", type=Path, required=True, help="index JSON path")
    query.add_argument("--edges", type=int, default=12, help="query size (edges)")
    query.add_argument("--count", type=int, default=3, help="number of queries")
    query.add_argument("--sigma", type=float, default=2.0, help="distance threshold")
    query.add_argument("--seed", type=int, default=42, help="query sampling seed")
    query.add_argument(
        "--compare-naive",
        action="store_true",
        help="also run the naive scan (slow) to cross-check the answers",
    )

    stats = subparsers.add_parser("stats", help="print database / index statistics")
    stats.add_argument("--database", type=Path, help="database JSON path")
    stats.add_argument("--index", type=Path, help="index JSON path")

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the EXPERIMENTS.md report"
    )
    experiments.add_argument("--quick", action="store_true", help="reduced configuration")
    experiments.add_argument(
        "--output", type=Path, default=Path("EXPERIMENTS.md"), help="report path"
    )
    return parser


def _command_generate(arguments: argparse.Namespace) -> int:
    database = generate_chemical_database(arguments.count, seed=arguments.seed)
    database.save(arguments.output)
    print(f"wrote {len(database)} graphs to {arguments.output}")
    print(json.dumps(database.stats().as_dict(), indent=2))
    return 0


def _command_index(arguments: argparse.Namespace) -> int:
    database = GraphDatabase.load(arguments.database)
    measure = default_edge_mutation_distance()
    selector = ExhaustiveFeatureSelector(
        max_edges=arguments.max_edges,
        min_support=arguments.min_support,
        max_features=arguments.max_features,
        sample_size=min(50, len(database)),
    )
    features = selector.select(database)
    index = FragmentIndex(features, measure, backend=arguments.backend).build(database)
    save_index(index, arguments.output)
    print(f"indexed {len(database)} graphs with {index.num_classes} structure classes")
    print(json.dumps(index.stats().as_dict(), indent=2))
    return 0


def _command_query(arguments: argparse.Namespace) -> int:
    database = GraphDatabase.load(arguments.database)
    index = load_index(arguments.index)
    workload = QueryWorkload(database, seed=arguments.seed)
    queries = workload.sample_queries(arguments.edges, arguments.count)

    pis = PISearch(index, database)
    topo = TopoPruneSearch(index, database)
    naive = NaiveSearch(database, index.measure) if arguments.compare_naive else None

    for position, query in enumerate(queries):
        pis_result = pis.search(query, arguments.sigma)
        yt = len(topo.candidates(query, arguments.sigma))
        line = (
            f"query {position}: answers={pis_result.num_answers} "
            f"PIS candidates={pis_result.num_candidates} topoPrune candidates={yt} "
            f"prune={pis_result.prune_seconds:.3f}s verify={pis_result.verify_seconds:.3f}s"
        )
        if naive is not None:
            naive_result = naive.search(query, arguments.sigma)
            agreement = set(naive_result.answer_ids) == set(pis_result.answer_ids)
            line += f" naive-agrees={agreement}"
        print(line)
    return 0


def _command_stats(arguments: argparse.Namespace) -> int:
    if arguments.database is None and arguments.index is None:
        print("nothing to report: pass --database and/or --index", file=sys.stderr)
        return 2
    if arguments.database is not None:
        database = GraphDatabase.load(arguments.database)
        print("database:")
        print(json.dumps(database.stats().as_dict(), indent=2))
    if arguments.index is not None:
        index = load_index(arguments.index)
        print("index:")
        print(json.dumps(index.stats().as_dict(), indent=2))
    return 0


def _command_experiments(arguments: argparse.Namespace) -> int:
    from .experiments.run_all import generate_report, quick_config
    from .experiments.config import paper_scaled_config

    configuration = quick_config() if arguments.quick else paper_scaled_config()
    generate_report(configuration, output=arguments.output, echo=True)
    print(f"wrote {arguments.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``pis`` console script."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "index": _command_index,
        "query": _command_query,
        "stats": _command_stats,
        "experiments": _command_experiments,
    }
    return handlers[arguments.command](arguments)


if __name__ == "__main__":
    raise SystemExit(main())
