"""Command-line interface for the PIS library.

Subcommands
-----------
``generate``
    Generate a synthetic chemical-like database and write it to JSON.
``index``
    Build an engine (feature selection + fragment index) over a database
    file, from CLI flags or a declarative ``--config`` JSON file, and save
    the index and/or the whole engine to JSON.  ``--shards N`` partitions
    the database across N per-shard indexes (built in parallel processes
    with ``--workers``); a sharded index saves as a manifest plus one
    payload file per shard.
``query``
    Answer SSSD queries against a database + index (or saved engine),
    comparing PIS with the baselines; ``--workers`` batches the queries
    over a worker pool, ``--verify-workers`` parallelizes candidate
    verification within each query, ``--verifier`` picks the
    verification implementation (``auto``/``bounded``/``legacy``), and
    ``--kernel`` picks the superposition search kernel
    (``auto``/``array``/``legacy`` — byte-identical answers).
``explain``
    Plan sampled queries without mutating anything and print each plan —
    chosen partition, per-fragment selectivities, and estimated vs.
    actual candidate counts — plus the plan-cache statistics.
``update``
    Incrementally add and/or remove graphs in a saved engine — no rebuild:
    the fragment index and its posting lists are updated in place and both
    the engine and the (mutated) database are written back out (atomically,
    via write-temp + fsync + rename).  ``--wal`` additionally fsyncs every
    batch to a write-ahead log at ``<engine>.wal`` *before* mutating, so a
    crash mid-update never loses a committed batch.
``recover``
    Replay the write-ahead log left by a crashed ``pis update --wal``: the
    engine and database are brought forward to the last committed batch,
    checkpointed, and the log is pruned.  Recovery is idempotent — running
    it twice (or after a clean update) is a no-op.
``stats``
    Print database / index statistics.
``serve``
    Run the always-on query server (:mod:`repro.serve`): a TCP JSON-lines
    front door that micro-batches concurrent queries over the engine's
    resident worker pools and answers repeated queries from the
    generation-keyed result cache.  ``--port 0`` binds an ephemeral port;
    ``--port-file`` publishes the bound address for clients and CI.
    ``--warm queries.json`` pre-populates the plan cache and the
    query-fragment memo before the server accepts its first connection.
``bench-serve``
    Drive a running server with N concurrent clients and report sustained
    throughput; ``--engine`` cross-checks every response against a direct
    (uncached) search and prints ``answers-identical=True/False``.
``experiments``
    Regenerate the EXPERIMENTS.md report (same as
    ``python -m repro.experiments.run_all``).

Example session::

    pis generate --count 200 --output db.json
    pis index --database db.json --max-edges 5 --shards 4 --workers 4 \\
        --engine-output engine.json
    pis query --database db.json --engine engine.json --sigma 2 \\
        --executor process
    pis generate --count 20 --seed 9 --output delta.json
    pis update --database db.json --engine engine.json \\
        --add delta.json --remove 3,17 \\
        --database-output db.json --engine-output engine.json
    pis serve --database db.json --engine engine.json \\
        --port 0 --port-file server.addr &
    pis bench-serve --database db.json --engine engine.json \\
        --port-file server.addr --clients 4 --rounds 3

or, with a declarative engine config::

    echo '{"selector": "exhaustive", "selector_params": {"max_edges": 5},
           "backend": "trie", "strategy": "pis"}' > config.json
    pis index --database db.json --config config.json --engine-output engine.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import List, Optional, Tuple

from .core.database import GraphDatabase
from .core.errors import EngineConfigError, PISError
from .datasets.generator import generate_chemical_database
from .datasets.queries import QueryWorkload
from .engine import Engine, EngineConfig
from .index.persistence import load_index, save_index
from .serve import QueryServer, ServeClient

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``pis`` command."""
    parser = argparse.ArgumentParser(
        prog="pis",
        description="Partition-based graph index and search (ICDE 2006 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic database")
    generate.add_argument("--count", type=int, default=200, help="number of graphs")
    generate.add_argument("--seed", type=int, default=7, help="generator seed")
    generate.add_argument("--output", type=Path, required=True, help="output JSON path")

    index = subparsers.add_parser("index", help="build an engine / fragment index")
    index.add_argument("--database", type=Path, required=True, help="database JSON path")
    index.add_argument(
        "--config",
        type=Path,
        help="engine config JSON; cannot be combined with the individual "
        "selector/backend flags below",
    )
    index.add_argument(
        "--max-edges", type=int, help="max fragment size (default 4)"
    )
    index.add_argument(
        "--min-support", type=float, help="feature support (default 0.08)"
    )
    index.add_argument(
        "--max-features", type=int, help="feature cap (default 250)"
    )
    index.add_argument("--backend", help="per-class backend (default trie)")
    index.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the parallel build (0 = serial): fragment "
        "enumeration on an unsharded engine, whole shards with --shards",
    )
    index.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the database across N shards (overrides the config; "
        "default: the config's shards, i.e. 1)",
    )
    index.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default=None,
        help="executor for the engine's parallel work — shard scatter-gather "
        "and parallel verification (overrides the config; default thread)",
    )
    index.add_argument("--output", type=Path, help="index-only output JSON path")
    index.add_argument(
        "--engine-output",
        type=Path,
        help="whole-engine output JSON path (config + index)",
    )

    query = subparsers.add_parser("query", help="run SSSD queries")
    query.add_argument("--database", type=Path, required=True, help="database JSON path")
    query.add_argument("--index", type=Path, help="index JSON path")
    query.add_argument(
        "--engine", type=Path, help="saved engine JSON path (alternative to --index)"
    )
    query.add_argument(
        "--config",
        type=Path,
        help="engine config JSON (strategy + params) used with --index",
    )
    query.add_argument("--edges", type=int, default=12, help="query size (edges)")
    query.add_argument("--count", type=int, default=3, help="number of queries")
    query.add_argument("--sigma", type=float, default=2.0, help="distance threshold")
    query.add_argument("--seed", type=int, default=42, help="query sampling seed")
    query.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker-pool size for batched query execution (0 = sequential)",
    )
    query.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default=None,
        help="worker pool kind; 'process' sidesteps the GIL for CPU-bound "
        "verification at the cost of pickling work into each worker "
        "(default: thread, or the engine config's executor when sharded)",
    )
    query.add_argument(
        "--verify-workers",
        type=int,
        default=None,
        help="thread-pool size for parallel candidate verification within "
        "each query (default: the engine config's verify_workers); "
        "GIL-bound for pure-Python verification — prefer --executor "
        "process for wall-clock gains",
    )
    query.add_argument(
        "--verifier",
        default=None,
        help="candidate verifier registry name (auto, bounded, legacy); "
        "overrides the engine config",
    )
    query.add_argument(
        "--kernel",
        choices=("auto", "array", "legacy"),
        default=None,
        help="superposition search kernel: 'array' forces the vectorized "
        "kernel, 'legacy' the recursive reference search, 'auto' follows "
        "the global optimization flags; answers are byte-identical either "
        "way (overrides the engine config)",
    )
    query.add_argument(
        "--compare-naive",
        action="store_true",
        help="also run the naive scan (slow) to cross-check the answers",
    )

    explain = subparsers.add_parser(
        "explain",
        help="plan sampled queries and print partition/selectivity details",
    )
    explain.add_argument(
        "--database", type=Path, required=True, help="database JSON path"
    )
    explain.add_argument("--index", type=Path, help="index JSON path")
    explain.add_argument(
        "--engine", type=Path, help="saved engine JSON path (alternative to --index)"
    )
    explain.add_argument(
        "--config",
        type=Path,
        help="engine config JSON (strategy + params) used with --index",
    )
    explain.add_argument("--edges", type=int, default=12, help="query size (edges)")
    explain.add_argument("--count", type=int, default=3, help="number of queries")
    explain.add_argument("--sigma", type=float, default=2.0, help="distance threshold")
    explain.add_argument("--seed", type=int, default=42, help="query sampling seed")

    update = subparsers.add_parser(
        "update", help="incrementally add/remove graphs in a saved engine"
    )
    update.add_argument(
        "--database", type=Path, required=True, help="database JSON path"
    )
    update.add_argument(
        "--engine", type=Path, required=True, help="saved engine JSON path"
    )
    update.add_argument(
        "--add",
        type=Path,
        help="database JSON whose graphs are appended and indexed",
    )
    update.add_argument(
        "--remove",
        help="comma-separated graph ids to remove (e.g. 3,17,42)",
    )
    update.add_argument(
        "--reuse-ids",
        action="store_true",
        help="assign added graphs to retired (removed) ids before fresh ones",
    )
    update.add_argument(
        "--database-output",
        type=Path,
        help="where to write the mutated database (default: --database)",
    )
    update.add_argument(
        "--engine-output",
        type=Path,
        help="where to write the updated engine (default: --engine)",
    )
    update.add_argument(
        "--wal",
        action="store_true",
        help="durable mode: fsync each batch to the write-ahead log at "
        "<engine>.wal before mutating, then checkpoint the outputs — a "
        "crash at any point is repairable with 'pis recover'",
    )

    recover = subparsers.add_parser(
        "recover",
        help="replay a write-ahead log after a crashed 'pis update --wal'",
    )
    recover.add_argument(
        "--database", type=Path, required=True, help="database JSON path"
    )
    recover.add_argument(
        "--engine",
        type=Path,
        required=True,
        help="saved engine JSON path (its log is at <engine>.wal)",
    )
    recover.add_argument(
        "--database-output",
        type=Path,
        help="where to write the recovered database (default: --database)",
    )
    recover.add_argument(
        "--engine-output",
        type=Path,
        help="where to write the recovered engine (default: --engine)",
    )

    stats = subparsers.add_parser("stats", help="print database / index statistics")
    stats.add_argument("--database", type=Path, help="database JSON path")
    stats.add_argument("--index", type=Path, help="index JSON path")
    stats.add_argument("--engine", type=Path, help="engine JSON path")

    serve = subparsers.add_parser(
        "serve", help="run the always-on query server (TCP JSON lines)"
    )
    serve.add_argument(
        "--database", type=Path, required=True, help="database JSON path"
    )
    serve.add_argument(
        "--engine",
        type=Path,
        help="saved engine JSON path (default: build a default engine "
        "over the database at startup)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=9999,
        help="bind port (0 picks an ephemeral port; see --port-file)",
    )
    serve.add_argument(
        "--port-file",
        type=Path,
        help="write the bound 'host port' here once listening — the "
        "readiness signal for clients started concurrently",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=None,
        help="micro-batching window (default: the engine config's "
        "serve_batch_window_ms)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help="batch size cap (default: the engine config's serve_max_batch)",
    )
    serve.add_argument(
        "--result-cache-size",
        type=int,
        default=None,
        help="query-result cache capacity; 0 disables the cache "
        "(default: the engine config's result_cache_size)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="submission-queue bound before requests are shed as "
        "'overloaded'; 0 disables shedding (default: the engine "
        "config's serve_max_queue)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="per-connection pipelining cap; 0 means unlimited "
        "(default: the engine config's serve_max_inflight_per_conn)",
    )
    serve.add_argument(
        "--max-request-bytes",
        type=int,
        default=None,
        help="largest accepted request line; longer lines are discarded "
        "and answered with a 'too_large' error (default: the engine "
        "config's serve_max_request_bytes)",
    )
    serve.add_argument(
        "--warm",
        type=Path,
        help="JSON file of representative queries used to pre-populate the "
        "plan cache and query-fragment memo before serving: either "
        '{"sigmas": [...], "queries": [graph dicts]} or a bare list of '
        "graph dicts (fragment-memo warm only)",
    )

    bench_serve = subparsers.add_parser(
        "bench-serve", help="drive a running query server with concurrent clients"
    )
    bench_serve.add_argument(
        "--database", type=Path, required=True, help="database JSON path"
    )
    bench_serve.add_argument(
        "--engine",
        type=Path,
        help="saved engine JSON; when given, every response is cross-checked "
        "against a direct search and answers-identical is reported",
    )
    bench_serve.add_argument("--host", default="127.0.0.1", help="server address")
    bench_serve.add_argument("--port", type=int, default=9999, help="server port")
    bench_serve.add_argument(
        "--port-file",
        type=Path,
        help="read the server address from a file written by "
        "'pis serve --port-file' (overrides --host/--port)",
    )
    bench_serve.add_argument(
        "--edges", type=int, default=12, help="query size (edges)"
    )
    bench_serve.add_argument(
        "--count", type=int, default=8, help="number of distinct queries"
    )
    bench_serve.add_argument(
        "--sigma", type=float, default=2.0, help="distance threshold"
    )
    bench_serve.add_argument(
        "--seed", type=int, default=42, help="query sampling seed"
    )
    bench_serve.add_argument(
        "--clients", type=int, default=4, help="concurrent client connections"
    )
    bench_serve.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="times each client replays its queries (round 2+ hits the "
        "result cache)",
    )
    bench_serve.add_argument(
        "--connect-timeout",
        type=float,
        default=15.0,
        help="how long to wait for the server to accept connections",
    )
    bench_serve.add_argument(
        "--retries",
        type=int,
        default=8,
        help="bounded exponential-backoff retries per request when the "
        "server sheds it as overloaded",
    )

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the EXPERIMENTS.md report"
    )
    experiments.add_argument("--quick", action="store_true", help="reduced configuration")
    experiments.add_argument(
        "--output", type=Path, default=Path("EXPERIMENTS.md"), help="report path"
    )
    return parser


def _load_config(path: Optional[Path]) -> Optional[EngineConfig]:
    """Load an :class:`EngineConfig` from a JSON file (None passes through)."""
    if path is None:
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise EngineConfigError(
            f"cannot load engine config from {path}: {exc}"
        ) from exc
    return EngineConfig.from_dict(data)


def _command_generate(arguments: argparse.Namespace) -> int:
    database = generate_chemical_database(arguments.count, seed=arguments.seed)
    database.save(arguments.output)
    print(f"wrote {len(database)} graphs to {arguments.output}")
    print(json.dumps(database.stats().as_dict(), indent=2))
    return 0


def _command_index(arguments: argparse.Namespace) -> int:
    if arguments.output is None and arguments.engine_output is None:
        print("nothing to write: pass --output and/or --engine-output", file=sys.stderr)
        return 2
    explicit_flags = [
        flag
        for flag, value in (
            ("--max-edges", arguments.max_edges),
            ("--min-support", arguments.min_support),
            ("--max-features", arguments.max_features),
            ("--backend", arguments.backend),
        )
        if value is not None
    ]
    if arguments.config is not None and explicit_flags:
        # A config file and individual flags would silently shadow each
        # other; make the user pick one source of truth.
        print(
            f"cannot combine --config with {', '.join(explicit_flags)}",
            file=sys.stderr,
        )
        return 2
    database = GraphDatabase.load(arguments.database)
    config = _load_config(arguments.config)
    if config is None:
        config = EngineConfig(
            selector="exhaustive",
            selector_params={
                "max_edges": arguments.max_edges if arguments.max_edges is not None else 4,
                "min_support": (
                    arguments.min_support if arguments.min_support is not None else 0.08
                ),
                "max_features": (
                    arguments.max_features if arguments.max_features is not None else 250
                ),
                "sample_size": min(50, len(database)),
            },
            backend=arguments.backend if arguments.backend is not None else "trie",
        )
    if arguments.executor is not None:
        config = config.replace(executor=arguments.executor)
    engine = Engine.build(
        database, config, workers=arguments.workers, shards=arguments.shards
    )
    if arguments.output is not None:
        save_index(engine.index, arguments.output)
    if arguments.engine_output is not None:
        engine.save(arguments.engine_output)
    sharding = (
        f" across {engine.index.num_shards} shards" if engine.is_sharded else ""
    )
    print(
        f"indexed {len(database)} graphs with {engine.index.num_classes} "
        f"structure classes{sharding}"
    )
    print(json.dumps(engine.index.stats().as_dict(), indent=2))
    return 0


def _command_query(arguments: argparse.Namespace) -> int:
    if (arguments.index is None) == (arguments.engine is None):
        print("pass exactly one of --index or --engine", file=sys.stderr)
        return 2
    if arguments.engine is not None and arguments.config is not None:
        # A saved engine carries its own config; a second one would be
        # silently ignored, so reject the combination loudly.
        print("cannot combine --engine with --config", file=sys.stderr)
        return 2
    database = GraphDatabase.load(arguments.database)
    if arguments.engine is not None:
        engine = Engine.load(arguments.engine, database)
    else:
        index = load_index(arguments.index)
        engine = Engine.from_index(
            database, index, config=_load_config(arguments.config)
        )
    if arguments.verifier is not None:
        # A saved engine carries a verifier choice; unlike --config, the
        # verifier never changes answers, so overriding it is safe.
        engine.config = engine.config.replace(verifier=arguments.verifier)
    if arguments.kernel is not None:
        # Same reasoning: both kernels produce byte-identical answers.
        engine.config = engine.config.replace(kernel=arguments.kernel)
    workload = QueryWorkload(database, seed=arguments.seed)
    queries = workload.sample_queries(arguments.edges, arguments.count)

    batch = engine.search_many(
        queries,
        arguments.sigma,
        workers=arguments.workers,
        executor=arguments.executor,
        verify_workers=arguments.verify_workers,
    )
    topo = engine.make_strategy("topoPrune")
    naive = engine.make_strategy("naive") if arguments.compare_naive else None

    for position, (query, result) in enumerate(zip(queries, batch)):
        yt = len(topo.candidates(query, arguments.sigma))
        line = (
            f"query {position}: answers={result.num_answers} "
            f"PIS candidates={result.num_candidates} topoPrune candidates={yt} "
            f"prune={result.prune_seconds:.3f}s verify={result.verify_seconds:.3f}s"
        )
        if naive is not None:
            naive_result = naive.search(query, arguments.sigma)
            agreement = set(naive_result.answer_ids) == set(result.answer_ids)
            line += f" naive-agrees={agreement}"
        print(line)
    print(
        f"batch: {batch.num_queries} queries in {batch.wall_seconds:.3f}s "
        f"({batch.executor}, workers={batch.workers})"
    )
    return 0


def _command_explain(arguments: argparse.Namespace) -> int:
    if (arguments.index is None) == (arguments.engine is None):
        print("pass exactly one of --index or --engine", file=sys.stderr)
        return 2
    if arguments.engine is not None and arguments.config is not None:
        print("cannot combine --engine with --config", file=sys.stderr)
        return 2
    database = GraphDatabase.load(arguments.database)
    if arguments.engine is not None:
        engine = Engine.load(arguments.engine, database)
    else:
        index = load_index(arguments.index)
        engine = Engine.from_index(
            database, index, config=_load_config(arguments.config)
        )
    workload = QueryWorkload(database, seed=arguments.seed)
    queries = workload.sample_queries(arguments.edges, arguments.count)
    for position, query in enumerate(queries):
        explanation = engine.explain(query, arguments.sigma)
        print(f"query {position}:")
        print(json.dumps(explanation, indent=2, sort_keys=True))
    return 0


def _load_warm_queries(path: Path) -> Tuple[List[object], List[float]]:
    """Parse a ``--warm`` file into ``(queries, sigmas)``.

    Accepts ``{"sigmas": [...], "queries": [graph dicts]}`` or a bare list
    of graph dicts (which warms the fragment memo only — no sigmas means
    no plans are precomputed).
    """
    from .core.graph import LabeledGraph

    document = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(document, list):
        payload, sigmas = document, []
    elif isinstance(document, dict):
        payload = document.get("queries", [])
        sigmas = [float(sigma) for sigma in document.get("sigmas", [])]
    else:
        raise EngineConfigError(
            f"--warm file {path} must hold a list of graph dicts or a "
            '{"sigmas": [...], "queries": [...]} document'
        )
    queries = [LabeledGraph.from_dict(entry) for entry in payload]
    return queries, sigmas


def _command_update(arguments: argparse.Namespace) -> int:
    if arguments.add is None and arguments.remove is None:
        print("nothing to do: pass --add and/or --remove", file=sys.stderr)
        return 2
    removals: List[int] = []
    if arguments.remove is not None:
        try:
            removals = [
                int(token) for token in arguments.remove.split(",") if token.strip()
            ]
        except ValueError:
            print(
                f"--remove expects comma-separated integer ids, got "
                f"{arguments.remove!r}",
                file=sys.stderr,
            )
            return 2
    database = GraphDatabase.load(arguments.database)
    engine = Engine.load(
        arguments.engine, database, durability="wal" if arguments.wal else None
    )
    removed_entries = 0
    if removals:
        removed_entries = engine.remove_graphs(removals)
    added_ids: List[int] = []
    if arguments.add is not None:
        additions = GraphDatabase.load(arguments.add)
        added_ids = engine.add_graphs(list(additions), reuse_ids=arguments.reuse_ids)
    if engine.wal is not None:
        # Fold the log into fresh snapshots; every batch above is already
        # fsync'd, so a crash anywhere in here is repairable by replay.
        engine.checkpoint(
            arguments.engine_output or arguments.engine,
            database_path=arguments.database_output or arguments.database,
        )
    else:
        database.save(arguments.database_output or arguments.database)
        engine.save(arguments.engine_output or arguments.engine)
    print(
        f"removed {len(removals)} graphs ({removed_entries} index entries), "
        f"added {len(added_ids)} graphs"
        + (f" at ids {added_ids}" if added_ids else "")
    )
    print(
        f"database: {len(database)} live graphs "
        f"({len(database.removed_ids())} retired ids); "
        f"index generation {engine.index.generation}"
    )
    print(json.dumps(engine.index.stats().as_dict(), indent=2))
    return 0


def _command_recover(arguments: argparse.Namespace) -> int:
    database = GraphDatabase.load(arguments.database)
    database_lsn = database.wal_position
    # durability="wal" replays every committed record the snapshot (or the
    # database file) missed, creating the log directory if a crash struck
    # before the first append.
    engine = Engine.load(arguments.engine, database, durability="wal")
    recovered_lsn = engine.wal_applied_lsn
    engine.checkpoint(
        arguments.engine_output or arguments.engine,
        database_path=arguments.database_output or arguments.database,
    )
    print(
        f"recovered to WAL record {recovered_lsn} "
        f"(database file was at {database_lsn}); checkpointed and pruned"
    )
    print(
        f"database: {len(database)} live graphs "
        f"({len(database.removed_ids())} retired ids); "
        f"index generation {engine.index.generation}"
    )
    return 0


def _command_stats(arguments: argparse.Namespace) -> int:
    if arguments.database is None and arguments.index is None and arguments.engine is None:
        print(
            "nothing to report: pass --database, --index and/or --engine",
            file=sys.stderr,
        )
        return 2
    if arguments.engine is not None and arguments.database is None:
        print("--engine requires --database", file=sys.stderr)
        return 2
    database = None
    if arguments.database is not None:
        database = GraphDatabase.load(arguments.database)
        print("database:")
        print(json.dumps(database.stats().as_dict(), indent=2))
    if arguments.index is not None:
        index = load_index(arguments.index)
        print("index:")
        print(json.dumps(index.stats().as_dict(), indent=2))
    if arguments.engine is not None:
        engine = Engine.load(arguments.engine, database)
        print("engine:")
        print(json.dumps(engine.stats(), indent=2))
        # Exercise the filtering phase once so the performance profile
        # reflects a real pass (a freshly loaded engine has idle counters).
        # Verification is skipped on purpose: it can dominate query time,
        # and a stats command must stay cheap on large databases.
        try:
            probe = QueryWorkload(database, seed=0).sample_queries(
                num_edges=min(6, max(1, min(g.num_edges for g in database))),
                count=1,
            )
            engine.strategy.candidates(probe[0], sigma=1.0)
        except (PISError, ValueError):
            pass  # degenerate databases still get the (idle) profile
        print("profile:")
        print(json.dumps(engine.profile(), indent=2))
    return 0


def _serve_engine(arguments: argparse.Namespace) -> Engine:
    """Load (or build) the engine a serve-family command runs against."""
    database = GraphDatabase.load(arguments.database)
    if arguments.engine is not None:
        return Engine.load(arguments.engine, database)
    return Engine.build(database)


def _command_serve(arguments: argparse.Namespace) -> int:
    engine = _serve_engine(arguments)
    if arguments.result_cache_size is not None:
        engine.config = engine.config.replace(
            result_cache_size=arguments.result_cache_size
        )
    if arguments.warm is not None:
        warm_queries, warm_sigmas = _load_warm_queries(arguments.warm)
        summary = engine.warm(warm_queries, warm_sigmas)
        print(
            f"warmed {summary['queries']} queries "
            f"({summary['plans']} plans precomputed)",
            flush=True,
        )
    server = QueryServer(
        engine,
        batch_window_ms=arguments.batch_window_ms,
        max_batch=arguments.max_batch,
        max_queue=arguments.max_queue,
        max_inflight_per_conn=arguments.max_inflight,
        max_request_bytes=arguments.max_request_bytes,
    )

    async def run() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platforms without signal support: Ctrl-C raises

        def ready(host: str, port: int) -> None:
            print(f"serving on {host}:{port}", flush=True)
            if arguments.port_file is not None:
                arguments.port_file.write_text(f"{host} {port}\n", encoding="utf-8")

        await server.serve_forever(
            host=arguments.host, port=arguments.port, ready=ready, stop=stop
        )

    asyncio.run(run())
    print("server stopped cleanly")
    return 0


def _resolve_server_address(arguments: argparse.Namespace) -> Tuple[str, int]:
    """The server address: ``--port-file`` contents, else ``--host/--port``.

    The port file doubles as a readiness handshake, so a missing or
    still-empty file is polled for up to ``--connect-timeout`` seconds
    before giving up.
    """
    if arguments.port_file is None:
        return arguments.host, arguments.port
    deadline = time.monotonic() + arguments.connect_timeout
    while True:
        try:
            text = arguments.port_file.read_text(encoding="utf-8").strip()
            if text:
                host, port = text.split()
                return host, int(port)
        except (OSError, ValueError):
            pass
        if time.monotonic() >= deadline:
            raise EngineConfigError(
                f"no server address in {arguments.port_file} after "
                f"{arguments.connect_timeout:.1f}s; is 'pis serve' running?"
            )
        time.sleep(0.05)


def _command_bench_serve(arguments: argparse.Namespace) -> int:
    host, port = _resolve_server_address(arguments)
    database = GraphDatabase.load(arguments.database)
    workload = QueryWorkload(database, seed=arguments.seed)
    queries = workload.sample_queries(arguments.edges, arguments.count)
    reference = None
    if arguments.engine is not None:
        reference_engine = Engine.load(arguments.engine, database)
        reference = [
            reference_engine.search(query, arguments.sigma) for query in queries
        ]

    # Round-robin the queries across the clients; every client replays its
    # slice --rounds times over one long-lived connection, so round 2+
    # measures the warm (result-cached) path.
    assignments: List[List[Tuple[int, object]]] = [
        [] for _ in range(arguments.clients)
    ]
    for position, query in enumerate(queries):
        assignments[position % arguments.clients].append((position, query))

    def client_task(slice_):
        responses = []
        with ServeClient(
            host,
            port,
            connect_timeout=arguments.connect_timeout,
            max_retries=arguments.retries,
        ) as client:
            for _ in range(arguments.rounds):
                for position, query in slice_:
                    responses.append(
                        (position, client.search(query, arguments.sigma))
                    )
        return responses

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=arguments.clients) as pool:
        responses = [
            response
            for chunk in pool.map(client_task, assignments)
            for response in chunk
        ]
    elapsed = time.perf_counter() - start
    cached = sum(1 for _, response in responses if response.get("cached"))
    qps = len(responses) / elapsed if elapsed > 0 else float("inf")
    print(
        f"bench-serve: {len(responses)} requests from {arguments.clients} "
        f"clients in {elapsed:.3f}s ({qps:.1f} qps, {cached} cached)"
    )
    with ServeClient(
        host, port, connect_timeout=arguments.connect_timeout
    ) as client:
        metrics = client.stats()["server"]
    print("metrics:")
    print(json.dumps(metrics, indent=2, sort_keys=True))
    if reference is not None:
        identical = all(
            response["answers"] == reference[position].answer_ids
            and response["distances"]
            == {
                str(graph_id): distance
                for graph_id, distance in reference[
                    position
                ].answer_distances.items()
                if graph_id in reference[position].answer_ids
            }
            for position, response in responses
        )
        print(f"answers-identical={identical}")
        return 0 if identical else 1
    return 0


def _command_experiments(arguments: argparse.Namespace) -> int:
    from .experiments.run_all import generate_report, quick_config
    from .experiments.config import paper_scaled_config

    configuration = quick_config() if arguments.quick else paper_scaled_config()
    generate_report(configuration, output=arguments.output, echo=True)
    print(f"wrote {arguments.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``pis`` console script."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "index": _command_index,
        "query": _command_query,
        "explain": _command_explain,
        "update": _command_update,
        "recover": _command_recover,
        "stats": _command_stats,
        "serve": _command_serve,
        "bench-serve": _command_bench_serve,
        "experiments": _command_experiments,
    }
    try:
        return handlers[arguments.command](arguments)
    except PISError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
