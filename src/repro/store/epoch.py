"""Epoch-based reader/writer isolation for the fragment index.

The index keeps a single in-memory version, so isolation is achieved by
*pinning*: a search pins the current epoch for its whole duration and a
writer waits for every pin to drain before touching anything, then publishes
the next epoch atomically when it finishes.  A reader therefore only ever
observes the state before a batch or after it — never a half-applied
mutation — which is exactly the crash-recovery guarantee, applied to
concurrent readers instead of restarts.

Properties:

* **Shared readers** — any number of concurrent read pins.
* **Writer exclusion and priority** — a writer blocks new readers while it
  waits (no writer starvation under a steady query stream) and proceeds
  once in-flight readers drain.
* **Reentrancy** — a thread holding a read pin may pin again (``search``
  inside ``search_many``), and a thread holding the write side may write
  again (``Engine.add_graphs`` wrapping ``FragmentIndex.add_graph``).
  A reentrant reader also ignores a waiting writer, so nesting can never
  self-deadlock.
* **Pickle-safe** — executors ship shard indexes to worker processes;
  the manager's locks are recreated on unpickle (epoch number preserved,
  pins reset — a worker process starts with no in-flight operations).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["EpochManager"]


class EpochManager:
    """Shared read pins / exclusive writes with epoch publication.

    >>> epochs = EpochManager()
    >>> with epochs.read() as epoch:
    ...     epoch
    0
    >>> with epochs.write():
    ...     pass
    >>> epochs.current
    1
    """

    def __init__(self, epoch: int = 0):
        self._epoch = epoch
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None  # owning thread id
        self._writer_depth = 0
        self._writers_waiting = 0
        self._local = threading.local()

    @property
    def current(self) -> int:
        """The last published epoch."""

        return self._epoch

    def _read_depth(self) -> int:
        return getattr(self._local, "read_depth", 0)

    @contextmanager
    def read(self):
        """Pin the current epoch for shared reading.

        Yields the pinned epoch number.  The epoch cannot advance while any
        pin is held, so everything observed under the pin is one consistent
        index version.
        """

        me = threading.get_ident()
        depth = self._read_depth()
        if depth == 0 and self._writer != me:
            with self._cond:
                while self._writer is not None or self._writers_waiting:
                    self._cond.wait()
                self._readers += 1
        self._local.read_depth = depth + 1
        try:
            yield self._epoch
        finally:
            self._local.read_depth = depth
            if depth == 0 and self._writer != me:
                with self._cond:
                    self._readers -= 1
                    if self._readers == 0:
                        self._cond.notify_all()

    @contextmanager
    def write(self):
        """Exclusive write session; publishes the next epoch on exit.

        Yields the epoch number the session will publish.  Reentrant for
        the owning thread — nested sessions join the outer one and only
        the outermost exit publishes.
        """

        me = threading.get_ident()
        if self._writer == me:
            self._writer_depth += 1
            try:
                yield self._epoch + 1
            finally:
                self._writer_depth -= 1
            return
        if self._read_depth():
            raise RuntimeError(
                "cannot start a write session while holding a read pin"
            )
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
                self._writer = me
                self._writer_depth = 1
            finally:
                self._writers_waiting -= 1
        try:
            yield self._epoch + 1
        finally:
            with self._cond:
                self._writer_depth -= 1
                self._writer = None
                self._epoch += 1
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # pickling: locks cannot cross process boundaries; a worker copy
    # starts quiescent at the same epoch.

    def __getstate__(self):
        return {"epoch": self._epoch}

    def __setstate__(self, state):
        self.__init__(epoch=state["epoch"])
