"""Durability primitives: atomic file replacement, write-ahead log, epochs.

This package sits below the index and engine layers: :mod:`repro.store.wal`
makes mutation batches crash-safe, :mod:`repro.store.epoch` makes them safe
against concurrent readers, and :mod:`repro.store.atomic` is the shared
write-temp + fsync + rename helper every snapshot rewrite goes through.
"""

from .atomic import atomic_write_text, fsync_dir
from .epoch import EpochManager
from .wal import CRASH_ENV_VAR, CRASH_MODE_ENV_VAR, WalRecord, WriteAheadLog

__all__ = [
    "atomic_write_text",
    "fsync_dir",
    "EpochManager",
    "WalRecord",
    "WriteAheadLog",
    "CRASH_ENV_VAR",
    "CRASH_MODE_ENV_VAR",
]
