"""Write-ahead log for crash-safe index mutation.

Every :meth:`Engine.add_graphs` / :meth:`Engine.remove_graphs` batch is
recorded here — fsync'd to disk — *before* the in-memory index mutates.
After a crash at any point, replaying the log on top of the last persisted
snapshot reconstructs exactly the batches that committed; a batch whose
record never reached the disk never happened.

Format
------
A log is a directory of segment files named ``wal-<first-lsn>.log``.  Each
segment is a sequence of JSON lines::

    {"lsn": 7, "op": "add", "payload": {...}, "crc": 2693572943}

``lsn`` (log sequence number) increases by one per record across segments.
``crc`` is the CRC-32 of the canonical JSON encoding of the record without
the ``crc`` field; a record whose checksum does not match is *torn* (cut
short by a crash mid-write).  A torn tail — the final record of the final
segment — is expected and dropped; a bad checksum anywhere earlier raises
:class:`~repro.core.errors.WalCorruptionError`.

The commit point of a batch is the moment its record's bytes are fsync'd.
Checkpointing (:meth:`WriteAheadLog.checkpoint`) folds applied records into
the engine snapshot and rotates to a fresh segment via write-temp + atomic
rename, then prunes the covered segments.

Fault injection
---------------
The environment variable ``REPRO_CRASH_AFTER_WAL_RECORDS=N`` makes the
N-th appended record (counted process-wide) SIGKILL the process immediately
after its fsync — simulating a crash at the worst possible moment: the
batch is committed but nothing downstream (in-memory apply, snapshot
rewrite, checkpoint) has happened.  ``REPRO_CRASH_MODE=torn`` instead
writes only a prefix of the N-th record before dying, simulating a crash
*mid-write* (the batch must then be treated as never having happened).
The CI ``crash-recovery`` job drives both modes at randomized offsets.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional

from ..core.errors import WalCorruptionError, WalError
from .atomic import fsync_dir

__all__ = ["WalRecord", "WriteAheadLog", "CRASH_ENV_VAR", "CRASH_MODE_ENV_VAR"]

CRASH_ENV_VAR = "REPRO_CRASH_AFTER_WAL_RECORDS"
CRASH_MODE_ENV_VAR = "REPRO_CRASH_MODE"

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_LSN_DIGITS = 12

# Process-wide count of records appended by any WriteAheadLog instance;
# the fault-injection hook triggers on this counter so a CLI invocation
# that issues several batches (remove then add) exposes every boundary.
_records_appended = 0


@dataclass(frozen=True)
class WalRecord:
    """One committed mutation batch."""

    lsn: int
    op: str
    payload: dict


def _encode(lsn: int, op: str, payload: dict) -> bytes:
    body = {"lsn": lsn, "op": op, "payload": payload}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    body["crc"] = zlib.crc32(canonical.encode("utf-8"))
    return (json.dumps(body, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def _decode(raw: bytes) -> Optional[WalRecord]:
    """Decode one line; ``None`` if the line is torn or checksum-corrupt."""

    try:
        body = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(body, dict) or "crc" not in body:
        return None
    crc = body.pop("crc")
    try:
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None
    if zlib.crc32(canonical.encode("utf-8")) != crc:
        return None
    lsn = body.get("lsn")
    op = body.get("op")
    payload = body.get("payload")
    if not isinstance(lsn, int) or not isinstance(op, str) or not isinstance(payload, dict):
        return None
    return WalRecord(lsn=lsn, op=op, payload=payload)


def _segment_name(first_lsn: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_lsn:0{_LSN_DIGITS}d}{_SEGMENT_SUFFIX}"


class WriteAheadLog:
    """Append-only, checksummed, segment-rotating write-ahead log.

    >>> import tempfile
    >>> wal = WriteAheadLog(tempfile.mkdtemp())
    >>> wal.append("add", {"ids": [0, 1]})
    1
    >>> [record.op for record in wal.records()]
    ['add']
    """

    def __init__(self, directory, max_segment_bytes: int = 4 * 1024 * 1024):
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        if max_segment_bytes <= 0:
            raise WalError("max_segment_bytes must be positive")
        self._max_segment_bytes = max_segment_bytes
        self._committed_lsn = 0
        self._active_path: Optional[Path] = None
        self._scan()

    # ------------------------------------------------------------------
    # inspection

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def committed_lsn(self) -> int:
        """LSN of the last durably committed record (0 when empty)."""

        return self._committed_lsn

    def segment_paths(self) -> List[Path]:
        return sorted(self._dir.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))

    def records(self, after: int = 0) -> Iterator[WalRecord]:
        """Yield committed records with ``lsn > after`` in order.

        Stops silently at a torn tail; raises
        :class:`~repro.core.errors.WalCorruptionError` for a bad record
        anywhere else (including LSN gaps).
        """

        segments = self.segment_paths()
        last_lsn = 0
        for seg_index, segment in enumerate(segments):
            lines = segment.read_bytes().split(b"\n")
            for line_index, line in enumerate(lines):
                if not line:
                    continue
                record = _decode(line)
                if record is None:
                    trailing = [ln for ln in lines[line_index + 1 :] if ln]
                    is_last_segment = seg_index == len(segments) - 1
                    if is_last_segment and not any(_decode(ln) for ln in trailing):
                        return  # torn tail: crash cut the final record short
                    raise WalCorruptionError(
                        f"corrupt WAL record in {segment.name} "
                        f"(line {line_index + 1})"
                    )
                if last_lsn and record.lsn <= last_lsn:
                    # Overlap from a checkpoint interrupted between segment
                    # rotation and pruning: the same record exists in both
                    # the old and the new segment.  Keep the first copy.
                    continue
                if last_lsn and record.lsn != last_lsn + 1:
                    raise WalCorruptionError(
                        f"LSN gap in {segment.name}: {last_lsn} -> {record.lsn}"
                    )
                last_lsn = record.lsn
                if record.lsn > after:
                    yield record

    def pending(self, applied_lsn: int) -> List[WalRecord]:
        """Records committed to the log but beyond ``applied_lsn``."""

        return list(self.records(after=applied_lsn))

    # ------------------------------------------------------------------
    # mutation

    def append(self, op: str, payload: dict) -> int:
        """Durably append one record; returns its LSN.

        The record is on disk (written + flushed + fsync'd) when this
        returns — that fsync is the batch's commit point.
        """

        global _records_appended
        lsn = self._committed_lsn + 1
        data = _encode(lsn, op, payload)
        if self._active_path is None or (
            self._active_path.exists()
            and self._active_path.stat().st_size + len(data) > self._max_segment_bytes
            and self._active_path.stat().st_size > 0
        ):
            self._rotate(first_lsn=lsn)

        crash_after = int(os.environ.get(CRASH_ENV_VAR, "0") or 0)
        crash_mode = os.environ.get(CRASH_MODE_ENV_VAR, "kill")
        dying = crash_after > 0 and _records_appended + 1 >= crash_after
        if dying and crash_mode == "torn":
            # Crash mid-write: a prefix of the record reaches the disk, the
            # checksum can never match, so the batch never committed.
            data = data[: max(1, len(data) // 2)]

        with open(self._active_path, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

        if dying:
            os.kill(os.getpid(), signal.SIGKILL)

        _records_appended += 1
        self._committed_lsn = lsn
        return lsn

    def checkpoint(self, lsn: int) -> None:
        """Fold everything up to ``lsn`` into the snapshot's past.

        Rotates to a fresh segment (write-temp + atomic rename) that starts
        at ``lsn + 1`` — carrying forward any not-yet-checkpointed records —
        then prunes every older segment.  Crash-safe at every step: until
        the rename lands the old segments are authoritative, and after it
        the reader tolerates the old/new overlap.
        """

        retained = list(self.records(after=lsn))
        content = b"".join(_encode(r.lsn, r.op, r.payload) for r in retained)
        new_path = self._dir / _segment_name(lsn + 1)
        fd, tmp_name = tempfile.mkstemp(
            prefix=new_path.name + ".", suffix=".tmp", dir=str(self._dir)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(content)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, str(new_path))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        fsync_dir(self._dir)
        for segment in self.segment_paths():
            if segment != new_path:
                segment.unlink()
        fsync_dir(self._dir)
        self._active_path = new_path
        self._committed_lsn = max(lsn, retained[-1].lsn if retained else 0)

    # ------------------------------------------------------------------
    # internals

    def _rotate(self, first_lsn: int) -> None:
        """Start a new empty segment via write-temp + atomic rename."""

        new_path = self._dir / _segment_name(first_lsn)
        fd, tmp_name = tempfile.mkstemp(
            prefix=new_path.name + ".", suffix=".tmp", dir=str(self._dir)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, str(new_path))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        fsync_dir(self._dir)
        self._active_path = new_path

    @staticmethod
    def _segment_first_lsn(segment: Path) -> int:
        stem = segment.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            raise WalError(f"malformed WAL segment name: {segment.name}")

    def _truncate_torn_tail(self, segment: Path) -> None:
        """Cut a torn final record off so future appends start clean."""

        data = segment.read_bytes()
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline == -1:
                break  # unterminated tail: the record never fully committed
            line = data[offset:newline]
            if line and _decode(line) is None:
                break
            offset = newline + 1
        if offset < len(data):
            with open(segment, "r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())

    def _scan(self) -> None:
        segments = self.segment_paths()
        if not segments:
            self._committed_lsn = 0
            self._rotate(first_lsn=1)
            return
        # Raises WalCorruptionError on mid-stream corruption; stops at a
        # torn tail.  An empty post-checkpoint segment still encodes its
        # base LSN in its file name.
        last = 0
        for record in self.records():
            last = record.lsn
        tail = segments[-1]
        self._committed_lsn = max(last, self._segment_first_lsn(tail) - 1)
        self._active_path = tail
        self._truncate_torn_tail(tail)
