"""Crash-safe file replacement.

``truncate-then-write`` (the naive ``Path.write_text``) has a window where a
crash leaves the *only* copy of a file empty or half-written.  Everything in
the durability layer — WAL segments, engine snapshots, database files — goes
through :func:`atomic_write_text` instead: write a temporary sibling, fsync
it, then :func:`os.replace` it over the destination (atomic on POSIX), and
finally fsync the directory so the rename itself survives a power cut.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text", "fsync_dir"]


def fsync_dir(path) -> None:
    """fsync a directory so renames/creates inside it are durable.

    Best-effort: some platforms (and some filesystems) refuse ``open`` on a
    directory; durability then degrades to the data-file fsync, which is the
    pre-existing behaviour everywhere else in the codebase.
    """

    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path, text: str) -> None:
    """Replace ``path`` with ``text`` atomically.

    The temporary file lives in the same directory as ``path`` so the final
    ``os.replace`` never crosses a filesystem boundary.  On any failure the
    temporary file is removed and the original file is left untouched.
    """

    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=str(target.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, str(target))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_dir(target.parent)
