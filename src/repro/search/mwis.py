"""Maximum weighted independent set solvers (Section 5).

The index-based partition problem is equivalent to MWIS on the
overlapping-relation graph (Theorem 1).  The paper uses:

* ``Greedy()`` (Algorithm 1) — repeatedly pick the heaviest remaining vertex
  and delete its neighbourhood; runs in O(c·n) rounds and has optimality
  ratio 1/c where c is the maximum independent-set size (Theorem 2);
* ``EnhancedGreedy(k)`` — pick a maximum-weight independent k-set per round,
  guaranteeing a c/k ratio in O(c^k · n^k) time (Theorem 3); the paper finds
  k = 2 performs like plain greedy on real data;
* an exact solver is added here (branch and bound with a weight bound) so
  that the optimality-ratio claims can actually be measured in the ablation
  experiments and tests.

All solvers operate on an :class:`~repro.search.overlap_graph.OverlapGraph`
(or any object exposing ``weights``, ``adjacency``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .overlap_graph import OverlapGraph

__all__ = [
    "MWISResult",
    "greedy_mwis",
    "enhanced_greedy_mwis",
    "exact_mwis",
    "solve_mwis",
]


@dataclass(frozen=True)
class MWISResult:
    """An independent set and its total weight."""

    nodes: FrozenSet[int]
    weight: float
    method: str

    def __len__(self) -> int:
        return len(self.nodes)


def _check_independent(graph: OverlapGraph, nodes: Iterable[int]) -> None:
    if not graph.is_independent_set(nodes):
        raise AssertionError("solver returned a dependent set; this is a bug")


def greedy_mwis(graph: OverlapGraph) -> MWISResult:
    """Algorithm 1: repeatedly take the heaviest vertex, drop its neighbours."""
    remaining: Set[int] = set(range(graph.num_nodes))
    selected: Set[int] = set()
    while remaining:
        best = max(
            remaining,
            key=lambda node: (graph.weights[node], -node),
        )
        selected.add(best)
        remaining.discard(best)
        remaining -= graph.adjacency[best]
    _check_independent(graph, selected)
    return MWISResult(
        nodes=frozenset(selected),
        weight=graph.total_weight(selected),
        method="greedy",
    )


def enhanced_greedy_mwis(graph: OverlapGraph, k: int = 2) -> MWISResult:
    """EnhancedGreedy(k): take a maximum-weight independent k-set per round.

    A "k-set" may contain fewer than ``k`` vertices (the paper allows it);
    each round enumerates all independent subsets of the remaining vertices
    with at most ``k`` elements, keeps the heaviest, and removes it together
    with its neighbourhood.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    remaining: Set[int] = set(range(graph.num_nodes))
    selected: Set[int] = set()
    while remaining:
        best_subset: Optional[Tuple[int, ...]] = None
        best_weight = float("-inf")
        candidates = sorted(remaining)
        for size in range(1, min(k, len(candidates)) + 1):
            for subset in combinations(candidates, size):
                subset_set = set(subset)
                independent = True
                for node in subset:
                    if graph.adjacency[node] & subset_set - {node}:
                        independent = False
                        break
                if not independent:
                    continue
                weight = graph.total_weight(subset)
                if weight > best_weight:
                    best_weight = weight
                    best_subset = subset
        if best_subset is None:
            break
        selected.update(best_subset)
        for node in best_subset:
            remaining.discard(node)
            remaining -= graph.adjacency[node]
    _check_independent(graph, selected)
    return MWISResult(
        nodes=frozenset(selected),
        weight=graph.total_weight(selected),
        method=f"enhanced-greedy-{k}",
    )


def exact_mwis(graph: OverlapGraph, max_nodes: int = 40) -> MWISResult:
    """Exact MWIS by branch and bound (small overlap graphs only).

    Raises
    ------
    ValueError
        If the overlap graph has more than ``max_nodes`` nodes; the exact
        solver exists for tests and ablations, not for production search.
    """
    if graph.num_nodes > max_nodes:
        raise ValueError(
            f"exact MWIS limited to {max_nodes} nodes; got {graph.num_nodes}"
        )
    # Order vertices by decreasing weight so good solutions are found early.
    order = sorted(
        range(graph.num_nodes), key=lambda node: -graph.weights[node]
    )
    suffix_weight = [0.0] * (len(order) + 1)
    for position in range(len(order) - 1, -1, -1):
        suffix_weight[position] = suffix_weight[position + 1] + max(
            0.0, graph.weights[order[position]]
        )

    best_nodes: Set[int] = set()
    best_weight = 0.0

    def branch(position: int, chosen: Set[int], blocked: Set[int], weight: float):
        nonlocal best_nodes, best_weight
        if weight > best_weight:
            best_weight = weight
            best_nodes = set(chosen)
        if position == len(order):
            return
        # Bound: even taking every remaining positive weight cannot win.
        if weight + suffix_weight[position] <= best_weight:
            return
        node = order[position]
        if node not in blocked:
            branch(
                position + 1,
                chosen | {node},
                blocked | graph.adjacency[node],
                weight + graph.weights[node],
            )
        branch(position + 1, chosen, blocked, weight)

    branch(0, set(), set(), 0.0)
    _check_independent(graph, best_nodes)
    return MWISResult(
        nodes=frozenset(best_nodes), weight=best_weight, method="exact"
    )


def solve_mwis(graph: OverlapGraph, method: str = "greedy", k: int = 2) -> MWISResult:
    """Dispatch to a solver by name: ``greedy``, ``enhanced-greedy``, ``exact``."""
    if method == "greedy":
        return greedy_mwis(graph)
    if method in ("enhanced-greedy", "enhanced_greedy"):
        return enhanced_greedy_mwis(graph, k=k)
    if method == "exact":
        return exact_mwis(graph)
    raise ValueError(f"unknown MWIS method {method!r}")
