"""Baseline SSSD strategies: naive scan and topoPrune (Section 2, Section 7).

* **Naive scan** verifies every database graph — the "not scalable" solution
  the paper opens with.  It is the ground truth every other strategy is
  validated against.
* **topoPrune** first removes the graphs that cannot contain the query
  *structure* and verifies the rest.  Following the paper's experimental
  setup ("we build topoPrune and PIS based on the gIndex algorithm"), the
  structure filter is feature-based: the candidate set is the intersection,
  over the indexed structures occurring in the query, of the sets of
  database graphs containing that structure.  Its candidate count is the
  ``Y_t`` of Figures 8–10 and does not depend on the distance threshold.
* **ExactTopoPrune** replaces the feature-based containment filter with a
  full subgraph-isomorphism test of the query skeleton.  It is slower but
  returns the tightest possible structure-only candidate set; experiments
  use it to show how much of PIS's gain comes from the distance lower bound
  rather than from structure filtering alone.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..core.database import GraphDatabase
from ..core.distance import DistanceMeasure
from ..core.errors import IndexNotBuiltError
from ..core.graph import LabeledGraph
from ..core.isomorphism import has_embedding
from .. import perf
from ..index.bitset import ids_from_bits
from ..index.fragment_index import FragmentIndex
from .strategy import SearchStrategy
from .verify import AUTO_VERIFIER

__all__ = ["NaiveSearch", "TopoPruneSearch", "ExactTopoPruneSearch"]


class NaiveSearch(SearchStrategy):
    """Verify every graph in the database (no filtering at all)."""

    name = "naive"

    def candidates(self, query: LabeledGraph, sigma: float) -> List[int]:
        """Return every graph id: the naive scan never filters."""
        return list(self.database.graph_ids())


class TopoPruneSearch(SearchStrategy):
    """Feature-based structure pruning (gIndex-style), then verification.

    The candidate set is independent of ``sigma``: only containment of the
    query's indexed structures matters.  The legacy positional calling
    convention ``TopoPruneSearch(index, database)`` is still accepted.
    """

    name = "topoPrune"
    requires_index = True

    def __init__(
        self,
        database: GraphDatabase,
        measure: Optional[DistanceMeasure] = None,
        index: Optional[FragmentIndex] = None,
        verifier: str = AUTO_VERIFIER,
        verify_workers: int = 0,
        verify_executor: str = "thread",
    ):
        if isinstance(database, FragmentIndex):
            # Legacy calling convention: TopoPruneSearch(index, database).
            database, index = measure, database
            measure = None
        if index is None:
            raise IndexNotBuiltError(
                "TopoPruneSearch requires a built fragment index"
            )
        super().__init__(
            database=database,
            measure=index.measure,
            index=index,
            verifier=verifier,
            verify_workers=verify_workers,
            verify_executor=verify_executor,
        )

    def candidates(self, query: LabeledGraph, sigma: float) -> List[int]:
        """Graphs containing every indexed structure of the query.

        ``sigma`` is accepted for interface uniformity but ignored:
        structure containment does not depend on the distance threshold.
        """
        fragments = self.index.enumerate_query_fragments(query)
        use_bits = (
            perf.optimizations_enabled("bitsets") and self.index.supports_bitsets
        )
        candidate_ids: Optional[Set[int]] = None
        candidate_bits: Optional[int] = None
        seen_codes: Set = set()
        for fragment in fragments:
            # Structure containment depends only on the equivalence class,
            # so each class is intersected once.
            if fragment.code in seen_codes:
                continue
            seen_codes.add(fragment.code)
            class_index = self.index.get_class(fragment.code)
            if use_bits:
                # Posting lists are big-int bitsets: one AND per class.
                bits = class_index.containing_bits
                candidate_bits = (
                    bits if candidate_bits is None else candidate_bits & bits
                )
            else:
                containing = class_index.containing_graphs()
                candidate_ids = (
                    containing if candidate_ids is None else candidate_ids & containing
                )
        self.counters.increment("topo.classes_intersected", len(seen_codes))
        if use_bits:
            if candidate_bits is None:
                return self._all_graph_ids()
            return ids_from_bits(candidate_bits)
        if candidate_ids is None:
            return self._all_graph_ids()
        return sorted(candidate_ids)


class ExactTopoPruneSearch(SearchStrategy):
    """Structure pruning by a full subgraph-isomorphism test of the skeleton."""

    name = "exact-topoPrune"

    def candidates(self, query: LabeledGraph, sigma: float) -> List[int]:
        """Graphs whose skeleton embeds the query skeleton (sigma ignored)."""
        skeleton = query.skeleton()
        matched: List[int] = []
        for graph_id, graph in self.database.items():
            if has_embedding(skeleton, graph):
                matched.append(graph_id)
        return matched
