"""Overlapping-relation graph (Section 5, Figure 6).

Given the indexed fragments found in a query graph, PIS must choose a
vertex-disjoint subset of maximum total selectivity.  The fragments'
overlap structure is captured by the *overlapping-relation graph*: one node
per fragment, weighted by the fragment's selectivity, with an edge between
two fragments whenever they share a query-graph vertex.  A vertex-disjoint
partition of the query is exactly an independent set of this graph, which
is why the optimal partition problem reduces to maximum weighted
independent set (Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..index.fragment_index import QueryFragment

__all__ = ["OverlapGraph"]


@dataclass
class OverlapGraph:
    """Weighted graph over query fragments; edges mark vertex overlaps.

    Nodes are integer indices into ``fragments``.
    """

    fragments: List[QueryFragment]
    weights: Dict[int, float]
    adjacency: Dict[int, Set[int]]

    @classmethod
    def build(
        cls,
        fragments: Sequence[QueryFragment],
        weights: Sequence[float],
    ) -> "OverlapGraph":
        """Build the overlapping-relation graph for the given fragments."""
        if len(fragments) != len(weights):
            raise ValueError("fragments and weights must have the same length")
        nodes = list(range(len(fragments)))
        adjacency: Dict[int, Set[int]] = {node: set() for node in nodes}
        for i in nodes:
            for j in range(i + 1, len(fragments)):
                if fragments[i].overlaps(fragments[j]):
                    adjacency[i].add(j)
                    adjacency[j].add(i)
        return cls(
            fragments=list(fragments),
            weights={node: float(weights[node]) for node in nodes},
            adjacency=adjacency,
        )

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of fragment nodes."""
        return len(self.fragments)

    @property
    def num_edges(self) -> int:
        """Number of overlap edges."""
        return sum(len(neighbors) for neighbors in self.adjacency.values()) // 2

    def neighbors(self, node: int) -> Set[int]:
        """Neighbors (overlapping fragments) of ``node``."""
        return self.adjacency[node]

    def is_independent_set(self, nodes: Iterable[int]) -> bool:
        """Return ``True`` if no two of the given nodes overlap."""
        selected = list(nodes)
        selected_set = set(selected)
        for node in selected:
            if self.adjacency[node] & selected_set:
                return False
        return True

    def total_weight(self, nodes: Iterable[int]) -> float:
        """Sum of the weights of the given nodes."""
        return sum(self.weights[node] for node in nodes)

    def select_fragments(self, nodes: Iterable[int]) -> List[QueryFragment]:
        """Materialize the fragments corresponding to the given node ids."""
        return [self.fragments[node] for node in nodes]
