"""Common interface for SSSD search strategies (PIS and the baselines)."""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..core.database import GraphDatabase
from ..core.distance import DistanceMeasure
from ..core.errors import EngineConfigError
from ..core.graph import LabeledGraph
from ..core.superimposed import best_superposition
from ..perf import GLOBAL_COUNTERS, PerfCounters
from .results import SearchResult

__all__ = ["SearchStrategy"]


class SearchStrategy:
    """Base class: filter candidates, then verify them against the database.

    Subclasses implement :meth:`candidates`; verification is shared so that
    every strategy returns byte-for-byte comparable answer sets.

    Every strategy is instantiable with the same ``(database, measure,
    index=None)`` shape, so the registry in :mod:`repro.search.registry` can
    construct any of them uniformly.  Strategies that need a fragment index
    set :attr:`requires_index` and take their measure from the index.
    """

    #: strategy identifier used in reports and registry lookups
    name = "abstract"

    #: whether the strategy needs a built fragment index to operate
    requires_index = False

    def __init__(
        self,
        database: GraphDatabase,
        measure: DistanceMeasure = None,
        index=None,
    ):
        if measure is None and index is not None:
            measure = index.measure
        if measure is None:
            raise EngineConfigError(
                "a distance measure is required (directly or via an index)"
            )
        self.database = database
        self.measure = measure
        self.index = index
        # Index-backed strategies share the index's counter sink so that
        # filtering and verification report into one place; index-free
        # baselines own a private sink.
        index_counters = getattr(index, "counters", None)
        self.counters: PerfCounters = (
            index_counters
            if isinstance(index_counters, PerfCounters)
            else PerfCounters(mirror=GLOBAL_COUNTERS)
        )

    def candidates(self, query: LabeledGraph, sigma: float) -> List[int]:
        """Return the candidate graph ids for one query (filtering phase)."""
        raise NotImplementedError

    def verify(
        self, query: LabeledGraph, sigma: float, candidate_ids: List[int]
    ) -> Tuple[List[int], Dict[int, float]]:
        """Verify candidates: keep graphs whose true distance is within sigma."""
        answers: List[int] = []
        distances: Dict[int, float] = {}
        explored = 0
        with self.counters.timer("verify"):
            for graph_id in candidate_ids:
                result = best_superposition(
                    query, self.database[graph_id], self.measure, threshold=sigma
                )
                explored += result.explored
                if result.distance <= sigma:
                    answers.append(graph_id)
                    distances[graph_id] = result.distance
        self.counters.increment("verify.candidates", len(candidate_ids))
        self.counters.increment("verify.superpositions_explored", explored)
        return answers, distances

    def search(self, query: LabeledGraph, sigma: float) -> SearchResult:
        """Run filtering + verification and time the two phases."""
        before = self.counters.snapshot()
        start = time.perf_counter()
        candidate_ids = self.candidates(query, sigma)
        prune_seconds = time.perf_counter() - start

        start = time.perf_counter()
        answers, distances = self.verify(query, sigma, candidate_ids)
        verify_seconds = time.perf_counter() - start

        result = SearchResult(
            sigma=sigma,
            candidate_ids=list(candidate_ids),
            answer_ids=answers,
            answer_distances=distances,
            prune_seconds=prune_seconds,
            verify_seconds=verify_seconds,
            method=self.name,
            counters=self.counters.delta(before),
        )
        result.report.num_database_graphs = len(self.database)
        result.report.num_candidates = len(candidate_ids)
        return result
