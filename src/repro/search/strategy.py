"""Common interface for SSSD search strategies (PIS and the baselines)."""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..core.database import GraphDatabase
from ..core.distance import DistanceMeasure
from ..core.graph import LabeledGraph
from ..core.superimposed import best_superposition
from .results import SearchResult

__all__ = ["SearchStrategy"]


class SearchStrategy:
    """Base class: filter candidates, then verify them against the database.

    Subclasses implement :meth:`candidates`; verification is shared so that
    every strategy returns byte-for-byte comparable answer sets.
    """

    #: strategy identifier used in reports
    name = "abstract"

    def __init__(self, database: GraphDatabase, measure: DistanceMeasure):
        self.database = database
        self.measure = measure

    def candidates(self, query: LabeledGraph, sigma: float) -> List[int]:
        """Return the candidate graph ids for one query (filtering phase)."""
        raise NotImplementedError

    def verify(
        self, query: LabeledGraph, sigma: float, candidate_ids: List[int]
    ) -> Tuple[List[int], Dict[int, float]]:
        """Verify candidates: keep graphs whose true distance is within sigma."""
        answers: List[int] = []
        distances: Dict[int, float] = {}
        for graph_id in candidate_ids:
            result = best_superposition(
                query, self.database[graph_id], self.measure, threshold=sigma
            )
            if result.distance <= sigma:
                answers.append(graph_id)
                distances[graph_id] = result.distance
        return answers, distances

    def search(self, query: LabeledGraph, sigma: float) -> SearchResult:
        """Run filtering + verification and time the two phases."""
        start = time.perf_counter()
        candidate_ids = self.candidates(query, sigma)
        prune_seconds = time.perf_counter() - start

        start = time.perf_counter()
        answers, distances = self.verify(query, sigma, candidate_ids)
        verify_seconds = time.perf_counter() - start

        result = SearchResult(
            sigma=sigma,
            candidate_ids=list(candidate_ids),
            answer_ids=answers,
            answer_distances=distances,
            prune_seconds=prune_seconds,
            verify_seconds=verify_seconds,
            method=self.name,
        )
        result.report.num_database_graphs = len(self.database)
        result.report.num_candidates = len(candidate_ids)
        return result
