"""Common interface for SSSD search strategies (PIS and the baselines)."""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.database import GraphDatabase
from ..core.distance import DistanceMeasure
from ..core.errors import EngineConfigError
from ..core.graph import LabeledGraph
from .. import perf
from ..perf import GLOBAL_COUNTERS, MemoCache, PerfCounters
from .results import PruningReport, SearchResult
from .verify import AUTO_VERIFIER, Verifier, make_verifier, resolve_verifier_name

__all__ = ["SearchStrategy"]


class SearchStrategy:
    """Base class: filter candidates, then verify them against the database.

    :meth:`search` is a template method shared by every strategy — PIS and
    the baselines alike — so all of them time and report the two phases
    identically.  Subclasses implement :meth:`candidates` (the filtering
    phase); strategies with a richer filtering phase (PIS) override
    :meth:`_filter` to also supply a pruning report and per-candidate lower
    bounds.  Verification itself is delegated to a pluggable
    :class:`~repro.search.verify.Verifier` so every strategy returns
    byte-for-byte comparable answer sets.

    Every strategy is instantiable with the same ``(database, measure,
    index=None)`` shape, so the registry in :mod:`repro.search.registry` can
    construct any of them uniformly.  Strategies that need a fragment index
    set :attr:`requires_index` and take their measure from the index.

    Parameters
    ----------
    database:
        The graph database to answer queries over.
    measure:
        Distance measure; may be omitted when ``index`` carries one.
    index:
        Optional built :class:`~repro.index.FragmentIndex`; required by
        strategies whose :attr:`requires_index` is true.
    verifier:
        Registry name of the candidate verifier (``"auto"``, ``"bounded"``,
        ``"legacy"``, or any :func:`repro.search.register_verifier` name).
        ``"auto"`` resolves to the optimized default.
    verify_workers:
        Default worker-pool size for parallel candidate verification
        (``0`` = serial); :meth:`search` accepts a per-call override.
    verify_executor:
        :mod:`repro.exec` executor kind for the verification pool:
        ``"thread"`` (default), ``"process"`` for GIL-free parallel
        verification, or ``"serial"``.
    verify_kernel:
        Superposition search kernel used during verification: ``"auto"``
        (default, follow the global ``"kernel"`` optimization flag),
        ``"array"`` (force the array kernel of :mod:`repro.core.kernel`),
        or ``"legacy"`` (force the recursive reference search).
    """

    #: strategy identifier used in reports and registry lookups
    name = "abstract"

    #: whether the strategy needs a built fragment index to operate
    requires_index = False

    def __init__(
        self,
        database: GraphDatabase,
        measure: Optional[DistanceMeasure] = None,
        index=None,
        verifier: str = AUTO_VERIFIER,
        verify_workers: int = 0,
        verify_executor: str = "thread",
        verify_kernel: str = "auto",
    ):
        if measure is None and index is not None:
            measure = index.measure
        if measure is None:
            raise EngineConfigError(
                "a distance measure is required (directly or via an index)"
            )
        self.database = database
        self.measure = measure
        self.index = index
        self.verifier_name = verifier
        self.verify_workers = int(verify_workers or 0)
        self.verify_executor = verify_executor
        self.verify_kernel = verify_kernel
        # Index-backed strategies share the index's counter sink so that
        # filtering and verification report into one place; index-free
        # baselines own a private sink.
        index_counters = getattr(index, "counters", None)
        self.counters: PerfCounters = (
            index_counters
            if isinstance(index_counters, PerfCounters)
            else PerfCounters(mirror=GLOBAL_COUNTERS)
        )
        self._verifiers: Dict[str, Verifier] = {}

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------
    def candidates(self, query: LabeledGraph, sigma: float) -> List[int]:
        """Return the candidate graph ids for one query (filtering phase)."""
        raise NotImplementedError

    def _filter(
        self, query: LabeledGraph, sigma: float
    ) -> Tuple[List[int], PruningReport, Optional[Dict[int, float]]]:
        """Filtering hook of the :meth:`search` template.

        Returns ``(candidate_ids, report, lower_bounds)``.  The base
        implementation wraps :meth:`candidates` and reports no lower bounds;
        PIS overrides it to expose its pruning report and the Eq. 2 bounds
        its filtering phase computes anyway.
        """
        candidate_ids = self.candidates(query, sigma)
        return candidate_ids, PruningReport(), None

    def plan_query(self, query: LabeledGraph, sigma: float):
        """Build (or fetch from cache) a query plan, if the strategy plans.

        The base implementation returns ``None`` — baselines have no
        plan/execute split and :meth:`search` falls back to :meth:`_filter`.
        PIS overrides this to consult its :class:`~repro.search.planner
        .GlobalPlanner` when the ``"caches"`` optimization flag is on.
        """
        return None

    def _execute(
        self, plan
    ) -> Tuple[List[int], PruningReport, Optional[Dict[int, float]]]:
        """Execute a precomputed plan (planning strategies only)."""
        raise NotImplementedError(f"{self.name} does not execute query plans")

    def _database_size(self) -> int:
        """Live database size reported per query (index-aware, like PIS)."""
        if self.index is not None:
            return max(self.index.num_live_graphs, len(self.database))
        return len(self.database)

    def _all_graph_ids(self) -> List[int]:
        """Every live graph id — the fallback when filtering cannot prune.

        Unions the database's live ids with the index's (the index may
        cover graphs the strategy's database copy does not, and vice
        versa) and never reports a retired id: a tombstoned graph must
        not resurface as a candidate, because verification would fail to
        fetch it.
        """
        ids = set(self.database.graph_ids())
        if self.index is not None:
            ids.update(self.index.live_graph_ids())
        return sorted(ids)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _distance_cache(self) -> Optional[MemoCache]:
        """The exact-distance memo cache shared through the index, if any.

        Index-free strategies return ``None`` and the bounded verifier owns
        a private cache instead.
        """
        cache = getattr(self.index, "distance_cache", None)
        return cache if isinstance(cache, MemoCache) else None

    def get_verifier(self, name: Optional[str] = None) -> Verifier:
        """Return (building on first use) the verifier registered as ``name``.

        ``None`` uses the strategy's configured :attr:`verifier_name`.
        Verifiers share the strategy's counter sink and the index's distance
        cache, so their work shows up in the same profile as filtering.
        """
        resolved = resolve_verifier_name(name or self.verifier_name)
        if resolved not in self._verifiers:
            self._verifiers[resolved] = make_verifier(
                resolved,
                self.database,
                self.measure,
                counters=self.counters,
                distance_cache=self._distance_cache(),
                workers=self.verify_workers,
                executor=self.verify_executor,
                kernel=self.verify_kernel,
            )
        return self._verifiers[resolved]

    def verify(
        self,
        query: LabeledGraph,
        sigma: float,
        candidate_ids: Sequence[int],
        lower_bounds: Optional[Mapping[int, float]] = None,
        workers: Optional[int] = None,
    ) -> Tuple[List[int], Dict[int, float]]:
        """Verify candidates: keep graphs whose true distance is within sigma.

        Delegates to the configured :class:`~repro.search.verify.Verifier`.
        When the global ``"verify"`` optimization flag is off
        (:func:`repro.perf.optimizations_disabled`), the legacy sequential
        loop is used instead regardless of configuration — the benchmark
        gate relies on this to measure the pre-subsystem verifier.

        Parameters
        ----------
        query, sigma, candidate_ids:
            The query, threshold, and filtered candidate ids.
        lower_bounds:
            Optional proven per-candidate lower bounds from filtering.
        workers:
            Per-call worker-pool override (``None`` = strategy default).

        Returns
        -------
        tuple
            ``(answer_ids, answer_distances)`` in candidate order.
        """
        if perf.optimizations_enabled("verify"):
            chosen = self.get_verifier()
        else:
            chosen = self.get_verifier("legacy")
        return chosen.verify(
            query, sigma, candidate_ids, lower_bounds=lower_bounds, workers=workers
        )

    # ------------------------------------------------------------------
    # the search template
    # ------------------------------------------------------------------
    def search(
        self,
        query: LabeledGraph,
        sigma: float,
        verify_workers: Optional[int] = None,
        plan=None,
    ) -> SearchResult:
        """Run filtering + verification and time the two phases.

        Parameters
        ----------
        query:
            The query graph.
        sigma:
            Distance threshold of the SSSD query.
        verify_workers:
            Worker-pool size for parallel verification of this one query
            (``None`` = the strategy's configured default).
        plan:
            An externally computed :class:`~repro.search.planner.QueryPlan`
            to execute (the scatter path plans once on the driver and ships
            the plan to every shard).  ``None`` asks the strategy to plan
            for itself via :meth:`plan_query`; strategies that do not plan
            run their legacy :meth:`_filter` path.

        Returns
        -------
        SearchResult
            Candidates, answers with exact distances, per-phase timings,
            the pruning report, and per-query counter deltas.
        """
        before = self.counters.snapshot()
        start = time.perf_counter()
        if plan is None:
            plan = self.plan_query(query, sigma)
        if plan is not None:
            candidate_ids, report, lower_bounds = self._execute(plan)
        else:
            candidate_ids, report, lower_bounds = self._filter(query, sigma)
        prune_seconds = time.perf_counter() - start

        start = time.perf_counter()
        answers, distances = self.verify(
            query,
            sigma,
            candidate_ids,
            lower_bounds=lower_bounds,
            workers=verify_workers,
        )
        verify_seconds = time.perf_counter() - start

        # Both report fields are (re)stated here so every strategy — base
        # template or PIS override — populates them identically.  A planned
        # execution already carries the *global* database size from the
        # plan; overwriting it with the strategy-local view would reintroduce
        # the shard-local-denominator bug the planner exists to fix.
        if not report.num_database_graphs:
            report.num_database_graphs = self._database_size()
        report.num_candidates = len(candidate_ids)
        return SearchResult(
            sigma=sigma,
            candidate_ids=list(candidate_ids),
            answer_ids=answers,
            answer_distances=distances,
            prune_seconds=prune_seconds,
            verify_seconds=verify_seconds,
            report=report,
            method=self.name,
            counters=self.counters.delta(before),
            plan=plan,
        )
