"""Global query planner: plan the filtering phase once, execute anywhere.

Algorithm 2 interleaves two very different kinds of work: *planning*
(enumerate the query's indexed fragments, estimate their selectivities,
solve the MWIS partition) and *execution* (range queries, candidate-set
intersection, the Eq. 2 lower-bound sweep).  Planning depends only on the
query, the threshold, and global database statistics — never on which
shard the work runs on — yet the scatter-gather engine historically
re-planned on every shard, multiplying the planning cost by the shard
count and, worse, letting shards pick *different* partitions because each
estimated selectivity with its shard-local ``n``.

This module hoists planning into a single global step:

* :class:`QueryPlan` — an immutable, picklable description of the
  filtering phase for one ``(query, sigma)``: the ordered fragments, their
  global selectivities, the positions surviving the epsilon floor, the
  MWIS partition, a candidate-count estimate — and the *globally computed
  filtering outcome itself* (the intersected structure-candidate set and
  the Eq. 2 lower bound of every structure candidate).  The engine
  computes it once and ships it to every shard task, whose execution
  shrinks to restricting the global outcome to the shard's live ids.
* :class:`GlobalPlanner` — builds plans from *merged* range results
  (``range_query`` on an unsharded
  :class:`~repro.index.FragmentIndex`, the shard-merging twin on a
  ``ShardedFragmentIndex``): the correct global ``n`` and exactly-rounded
  global distance sums (:func:`math.fsum` is order-independent), so the
  plan — and therefore every downstream candidate set and report — is
  bit-identical whether the database lives in one index or sixty-four
  shards.  Plans are memoized in a bounded
  :class:`~repro.perf.MemoCache` keyed
  ``(graph_signature(query), sigma, cutoff_lambda, index.generation)``:
  mutations bump the generation, so stale plans can never hit.

The cost model behind ``estimated_candidates`` treats fragments as
independent filters: each fragment ``i`` keeps a ``|T_i| / n`` fraction of
the database, so the intersection is estimated at ``n * prod(|T_i| / n)``.
Crude, but cheap, monotone in the statistics the planner already has, and
honest enough for ``pis explain`` to compare against the actual count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.graph import LabeledGraph
from ..perf import MemoCache, PerfCounters, graph_signature
from .partition import PartitionResult, select_partition
from .selectivity import SelectivityEstimator

__all__ = ["GlobalPlanner", "QueryPlan"]


@dataclass(frozen=True)
class QueryPlan:
    """Everything the filtering phase needs, decided once per query.

    Attributes
    ----------
    query_signature:
        Content signature of the planned query
        (:func:`repro.perf.graph_signature`) — lets executors assert they
        were handed the right plan.
    sigma / cutoff_lambda / epsilon:
        The thresholds the plan was computed under.
    generation:
        Index generation at planning time; a mutation invalidates the plan.
    num_database_graphs:
        The global live-graph count ``n`` used as the selectivity
        denominator — *not* any shard-local size.
    fragments:
        The query's indexed fragments, in enumeration order.  Range-query
        positions in ``eligible`` / ``partition_positions`` index into this
        tuple.
    selectivities:
        Global selectivity ``w(g)`` per fragment (same order).
    eligible:
        Positions surviving the epsilon floor (Algorithm 2, line 5).
    partition:
        The MWIS partition selected over the eligible fragments, or
        ``None`` when no fragment survived the floor.
    partition_positions:
        Fragment positions of the partition members, in the order the
        Eq. 2 sweep visits them (sorted MWIS node order).
    estimated_candidates:
        The cost model's candidate-count estimate (see module docstring).
    structure_candidates:
        The *global* structure-candidate set (Algorithm 2's intersection of
        the per-fragment range results), ascending.  ``None`` means the
        query contained no indexed fragment, so the index cannot prune —
        executors fall back to every locally live graph id.
    lower_bounds:
        Eq. 2 lower bound per global structure candidate.  Populated
        exactly when ``partition_applied``; the final candidates are the
        entries with ``bound <= sigma``.  Treat as read-only.
    partition_applied:
        Whether the Eq. 2 sweep ran globally (an eligible partition *and* a
        non-empty structure-candidate set).  Executors state the partition
        report fields exactly when this is set, mirroring the legacy
        single-pass guard.
    fragment_distances:
        The global per-fragment range-query results backing the plan, in
        fragment order.  Local executors surface them through
        :class:`~repro.search.pis.FilterOutcome`; they are **stripped when
        the plan is pickled** (process-executor shards need only the
        computed outcome, not the raw maps), so a shipped plan stays small.
    """

    query_signature: Any
    sigma: float
    cutoff_lambda: float
    epsilon: float
    generation: int
    num_database_graphs: int
    fragments: Tuple[Any, ...]
    selectivities: Tuple[float, ...]
    eligible: Tuple[int, ...]
    partition: Optional[PartitionResult]
    partition_positions: Tuple[int, ...]
    estimated_candidates: int
    structure_candidates: Optional[Tuple[int, ...]]
    lower_bounds: Dict[int, float]
    partition_applied: bool
    fragment_distances: Tuple[Dict[int, float], ...]

    def __getstate__(self) -> Dict[str, Any]:
        # The raw range-query maps can dwarf the outcome they produced;
        # shard tasks only need the outcome, so pickles drop the maps.
        state = dict(self.__dict__)
        state["fragment_distances"] = ()
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)

    def __copy__(self) -> "QueryPlan":
        # Plans are immutable once built (the plan cache hands the same
        # instance to every caller), so copies — notably the result
        # cache's defensive deepcopy of a SearchResult carrying its plan —
        # share them instead of cloning fragments and bound maps.
        return self

    def __deepcopy__(self, memo: Dict[int, Any]) -> "QueryPlan":
        return self

    @property
    def num_fragments(self) -> int:
        """Number of indexed fragments enumerated in the query."""
        return len(self.fragments)

    @property
    def num_structure_candidates(self) -> Optional[int]:
        """Global structure-candidate count (``None`` = unprunable query)."""
        if self.structure_candidates is None:
            return None
        return len(self.structure_candidates)

    @property
    def num_candidates(self) -> Optional[int]:
        """Global candidate count after the Eq. 2 sweep (``None`` =
        unprunable query)."""
        if self.structure_candidates is None:
            return None
        if not self.partition_applied:
            return len(self.structure_candidates)
        return sum(
            1 for bound in self.lower_bounds.values() if bound <= self.sigma
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view of the plan (used by ``pis explain``)."""
        partition: Optional[Dict[str, Any]] = None
        if self.partition is not None:
            partition = {
                "method": self.partition.method,
                "size": self.partition.size,
                "weight": round(self.partition.weight, 6),
                "fragments": [
                    {
                        "position": position,
                        "code": str(self.fragments[position].code),
                        "num_edges": self.fragments[position].num_edges,
                        "selectivity": round(self.selectivities[position], 6),
                    }
                    for position in self.partition_positions
                ],
            }
        return {
            "sigma": self.sigma,
            "cutoff_lambda": self.cutoff_lambda,
            "epsilon": self.epsilon,
            "generation": self.generation,
            "num_database_graphs": self.num_database_graphs,
            "num_fragments": self.num_fragments,
            "selectivities": [round(weight, 6) for weight in self.selectivities],
            "eligible_positions": list(self.eligible),
            "partition": partition,
            "partition_applied": self.partition_applied,
            "estimated_candidates": self.estimated_candidates,
            "num_structure_candidates": self.num_structure_candidates,
            "num_candidates": self.num_candidates,
        }


class GlobalPlanner:
    """Plans the filtering phase from global fragment statistics.

    Parameters
    ----------
    index:
        The index to plan over — an unsharded
        :class:`~repro.index.FragmentIndex` or a
        :class:`~repro.index.ShardedFragmentIndex`; both expose
        ``enumerate_query_fragments``, ``fragment_statistics``, and
        ``generation``, which is the planner's entire index contract.
    epsilon / cutoff_lambda / partition_method / partition_k:
        The pruning parameters, identical in meaning to
        :class:`~repro.search.pis.PISearch`.
    cache_size:
        Bound of the plan cache (LRU eviction beyond it; ``0`` disables
        storing).
    counters:
        Performance-counter sink.  Defaults to the index's counters, so
        ``plan.cache_hits`` / ``plan.cache_misses`` / ``plan.seconds`` /
        ``plan.global_stats_ms`` surface through the usual profiles.
    """

    def __init__(
        self,
        index: Any,
        epsilon: float = 0.0,
        cutoff_lambda: float = 1.0,
        partition_method: str = "greedy",
        partition_k: int = 2,
        cache_size: int = 256,
        counters: Optional[PerfCounters] = None,
    ):
        self.index = index
        self.epsilon = float(epsilon)
        self.cutoff_lambda = float(cutoff_lambda)
        self.partition_method = partition_method
        self.partition_k = int(partition_k)
        self.counters = (
            counters
            if counters is not None
            else getattr(index, "counters", None) or PerfCounters()
        )
        self._cache = MemoCache(
            "plan", maxsize=int(cache_size), counters=self.counters
        )

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def cache_key(
        self, query: LabeledGraph, sigma: float
    ) -> Tuple[Any, float, float, int]:
        """The plan-cache key: query content, thresholds, index generation."""
        return (
            graph_signature(query),
            float(sigma),
            float(self.cutoff_lambda),
            self.index.generation,
        )

    def plan(
        self,
        query: LabeledGraph,
        sigma: float,
        num_graphs: Optional[int] = None,
    ) -> QueryPlan:
        """Return the (possibly cached) plan for one ``(query, sigma)``.

        ``num_graphs`` overrides the selectivity denominator ``n``; by
        default the index's global live-graph count is used.  Plans are
        immutable, so cache hits return the stored object itself.
        """
        key = self.cache_key(query, sigma)
        cached = self._cache.get(key)
        if cached is not MemoCache.MISS:
            return cached
        with self.counters.timer("plan"):
            plan = self._compute_plan(key, query, sigma, num_graphs)
        self._cache.put(key, plan)
        return plan

    def _compute_plan(
        self,
        key: Tuple[Any, float, float, int],
        query: LabeledGraph,
        sigma: float,
        num_graphs: Optional[int],
    ) -> QueryPlan:
        n = (
            int(num_graphs)
            if num_graphs is not None
            else int(self.index.num_live_graphs)
        )
        fragments = tuple(self.index.enumerate_query_fragments(query))

        # One (merged) range query per fragment.  For a sharded index this
        # is the single point where shard-local information crosses into
        # the (topology-independent) plan: the merged maps carry the global
        # T sets, and math.fsum over them is exactly rounded — therefore
        # order-independent — so the selectivities below are bit-identical
        # to what an unsharded index computes over the same database.
        start = time.perf_counter()
        distance_maps: Tuple[Dict[int, float], ...] = tuple(
            self.index.range_query(fragment, sigma) for fragment in fragments
        )
        estimator = SelectivityEstimator(
            num_graphs=n, sigma=sigma, cutoff_lambda=self.cutoff_lambda
        )
        selectivities = tuple(
            estimator.from_range_result(distances).weight
            for distances in distance_maps
        )
        self.counters.increment("plan.range_queries", len(fragments))
        self.counters.increment(
            "plan.global_stats_ms", (time.perf_counter() - start) * 1000.0
        )

        eligible = tuple(
            position
            for position in range(len(fragments))
            if selectivities[position] > self.epsilon
        )

        partition: Optional[PartitionResult] = None
        partition_positions: Tuple[int, ...] = ()
        if eligible:
            partition = select_partition(
                [fragments[position] for position in eligible],
                [selectivities[position] for position in eligible],
                method=self.partition_method,
                k=self.partition_k,
            )
            partition_positions = tuple(
                eligible[node] for node in sorted(partition.mwis.nodes)
            )

        # Independence-model candidate estimate: each fragment keeps a
        # |T_i|/n fraction of the database; the intersection keeps the
        # product.  With no indexed fragments nothing is pruned.
        estimate = float(n)
        for distances in distance_maps:
            estimate *= len(distances) / n if n else 0.0
        estimated_candidates = int(round(estimate)) if n else 0

        # Algorithm 2's execution, run once globally: intersect the T sets
        # (lines 6-17) and sweep the Eq. 2 lower bound under the chosen
        # partition (lines 21-23).  Executors restrict this outcome to
        # their live ids instead of repeating any of it.
        structure_candidates: Optional[Tuple[int, ...]] = None
        if fragments:
            candidate_set = set(distance_maps[0])
            for distances in distance_maps[1:]:
                candidate_set &= distances.keys()
            structure_candidates = tuple(sorted(candidate_set))

        partition_applied = bool(partition is not None and structure_candidates)
        lower_bounds: Dict[int, float] = {}
        if partition_applied:
            partition_maps = [
                distance_maps[position] for position in partition_positions
            ]
            for graph_id in structure_candidates:
                bound = 0.0
                for distances in partition_maps:
                    distance = distances.get(graph_id)
                    if distance is None:
                        # No occurrence of this fragment within sigma: the
                        # superimposed distance already exceeds the
                        # threshold.
                        bound = sigma + 1.0
                        break
                    bound += distance
                    if bound > sigma:
                        break
                lower_bounds[graph_id] = bound

        return QueryPlan(
            query_signature=key[0],
            sigma=float(sigma),
            cutoff_lambda=self.cutoff_lambda,
            epsilon=self.epsilon,
            generation=key[3],
            num_database_graphs=n,
            fragments=fragments,
            selectivities=selectivities,
            eligible=eligible,
            partition=partition,
            partition_positions=partition_positions,
            estimated_candidates=estimated_candidates,
            structure_candidates=structure_candidates,
            lower_bounds=lower_bounds,
            partition_applied=partition_applied,
            fragment_distances=distance_maps,
        )

    # ------------------------------------------------------------------
    # cache accounting
    # ------------------------------------------------------------------
    @property
    def cache(self) -> MemoCache:
        """The underlying plan cache (exposed for tests and stats)."""
        return self._cache

    def clear_cache(self) -> None:
        """Drop every cached plan (accounting is kept)."""
        self._cache.clear()

    def cache_stats(self) -> Dict[str, Any]:
        """JSON-friendly plan-cache accounting, including the hit rate."""
        stats = self._cache.stats()
        lookups = self._cache.hits + self._cache.misses
        stats["hit_rate"] = round(
            self._cache.hits / lookups if lookups else 0.0, 6
        )
        return stats

    def __repr__(self) -> str:
        return (
            f"<GlobalPlanner epsilon={self.epsilon} "
            f"cutoff_lambda={self.cutoff_lambda} "
            f"method={self.partition_method!r} cache={len(self._cache)}>"
        )
