"""Result containers shared by PIS and the baseline search strategies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["SearchResult", "PruningReport"]


@dataclass
class PruningReport:
    """Diagnostics of the pruning (filtering) phase of one query.

    Attributes
    ----------
    num_database_graphs:
        Database size ``n``.
    num_query_fragments:
        Indexed fragments enumerated in the query (``|F|`` in Algorithm 2).
    num_fragments_after_epsilon:
        Fragments surviving the selectivity floor ``epsilon``.
    partition_size:
        Number of fragments in the selected vertex-disjoint partition.
    partition_weight:
        Total selectivity of the partition (the MWIS objective).
    num_structure_candidates:
        Graphs surviving structure/range intersection only (the quantity a
        purely structural filter would return for the same fragments).
    num_candidates:
        Final candidate count after the superimposed-distance lower bound
        (``Y_p`` in the experiments).
    planned:
        ``True`` when the filtering phase executed a precomputed
        :class:`~repro.search.planner.QueryPlan` (global selectivities and
        a single MWIS solve) instead of planning locally.
    estimated_candidates:
        The planner's candidate-count estimate for this query (``0`` on the
        legacy path).  Compared against ``num_candidates`` by
        ``pis explain``.
    """

    num_database_graphs: int = 0
    num_query_fragments: int = 0
    num_fragments_after_epsilon: int = 0
    partition_size: int = 0
    partition_weight: float = 0.0
    num_structure_candidates: int = 0
    num_candidates: int = 0
    planned: bool = False
    estimated_candidates: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """Return the report as a plain dictionary."""
        return {
            "num_database_graphs": self.num_database_graphs,
            "num_query_fragments": self.num_query_fragments,
            "num_fragments_after_epsilon": self.num_fragments_after_epsilon,
            "partition_size": self.partition_size,
            "partition_weight": round(self.partition_weight, 6),
            "num_structure_candidates": self.num_structure_candidates,
            "num_candidates": self.num_candidates,
            "planned": self.planned,
            "estimated_candidates": self.estimated_candidates,
        }


@dataclass
class SearchResult:
    """Outcome of one SSSD query.

    Attributes
    ----------
    sigma:
        Distance threshold used.
    candidate_ids:
        Graph ids surviving the filtering phase (before verification).
    answer_ids:
        Graph ids whose true minimum superimposed distance is ``<= sigma``.
    answer_distances:
        Exact distances for the answers (when the strategy computes them).
    prune_seconds / verify_seconds:
        Wall-clock split between filtering and verification.
    report:
        Filtering diagnostics (PIS only; baselines fill what applies).
    method:
        Name of the strategy that produced this result.
    counters:
        Performance counter deltas attributable to this query (cache
        hits/misses, range-query calls, verification work); populated by
        strategies that share a :class:`~repro.perf.PerfCounters` sink.
        Deltas from concurrently executing queries may interleave when a
        batch runs in a thread pool.

    from_cache:
        ``True`` when this result was served from the engine's
        query-result cache (:mod:`repro.serve`) instead of being computed;
        answers, distances, candidates, and report are byte-identical to
        the originally computed result, but the timings describe the
        original computation, not the (O(1)) cache hit.  Deliberately
        excluded from :meth:`as_dict`, which describes the query's answer,
        not how it was served.

    plan:
        The :class:`~repro.search.planner.QueryPlan` the filtering phase
        executed, when planning was enabled (``None`` on the legacy path
        and for strategies that do not plan).  Like ``from_cache`` it is
        excluded from :meth:`as_dict`: it describes how the query was
        executed, not its answer.

        The verification subsystem (:mod:`repro.search.verify`) reports
        under the ``verify.*`` prefix: ``verify.candidates`` (ids passed to
        the verifier), ``verify.superpositions_explored`` (complete
        superpositions examined), ``verify.lower_bound_skips`` (candidates
        rejected by the filtering lower bound without a distance
        computation — zero in the standard PIS pipeline, whose filtering
        already drops bound-exceeding candidates), ``verify.early_exits`` (branch-and-bound searches
        stopped by a bound-matching superposition),
        ``verify.cache_refreshes`` (memoized "> threshold" entries
        recomputed at a larger sigma), ``verify.parallel_batches`` (thread-
        pooled verification rounds), and the memo-cache accounting under
        ``verify_distance.cache_hits`` / ``verify_distance.cache_misses``.
    """

    sigma: float
    candidate_ids: List[int]
    answer_ids: List[int]
    answer_distances: Dict[int, float] = field(default_factory=dict)
    prune_seconds: float = 0.0
    verify_seconds: float = 0.0
    report: PruningReport = field(default_factory=PruningReport)
    method: str = ""
    counters: Dict[str, float] = field(default_factory=dict)
    from_cache: bool = False
    plan: Optional[Any] = None

    @property
    def num_candidates(self) -> int:
        """Number of candidate graphs passed to verification."""
        return len(self.candidate_ids)

    @property
    def num_answers(self) -> int:
        """Number of true answers."""
        return len(self.answer_ids)

    @property
    def total_seconds(self) -> float:
        """Total query processing time."""
        return self.prune_seconds + self.verify_seconds

    def as_dict(self) -> Dict[str, Any]:
        """Return a JSON-friendly summary (ids included, distances rounded)."""
        return {
            "method": self.method,
            "sigma": self.sigma,
            "num_candidates": self.num_candidates,
            "num_answers": self.num_answers,
            "prune_seconds": round(self.prune_seconds, 6),
            "verify_seconds": round(self.verify_seconds, 6),
            "report": self.report.as_dict(),
            "counters": {
                name: round(value, 6)
                for name, value in sorted(self.counters.items())
            },
        }
