"""Fragment selectivity (Definition 5 and Algorithm 2, line 18).

The selectivity of a fragment ``g`` with respect to a database ``D`` is its
average minimum superimposed distance to the database graphs,

```
w(g) = sum_i d(g, G_i) / n
```

with the singular values (``g`` not contained in ``G_i``, or distance above
the threshold) replaced by a cutoff.  The paper sets the cutoff to the query
threshold ``sigma`` and studies the sensitivity of the choice with a factor
``lambda`` (Figure 11): a cutoff of ``lambda * sigma`` with ``lambda < 1``
under-weights the graphs that do not contain the fragment at all, which is
exactly what hurts pruning; ``lambda >= 1`` behaves identically to
``lambda = 1`` as far as the greedy partition is concerned only when the
relative order of fragments is unchanged, so the experiment varies it.

Selectivity is computed directly from the per-fragment range-query results
(the ``T`` sets of Algorithm 2), so no additional index access is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

__all__ = ["SelectivityEstimator", "FragmentSelectivity"]


@dataclass(frozen=True)
class FragmentSelectivity:
    """Selectivity of one query fragment.

    Attributes
    ----------
    weight:
        The selectivity ``w(g)`` used as the MWIS vertex weight.
    num_matching_graphs:
        ``|T|`` — database graphs with a fragment occurrence within the
        distance threshold.
    mean_matched_distance:
        Average distance contribution of the matching graphs alone.
    """

    weight: float
    num_matching_graphs: int
    mean_matched_distance: float


class SelectivityEstimator:
    """Computes fragment selectivities from range-query results.

    Parameters
    ----------
    num_graphs:
        Database size ``n``.
    sigma:
        Query distance threshold.
    cutoff_lambda:
        Cutoff factor: graphs outside ``T`` contribute ``lambda * sigma``
        each.  ``1.0`` reproduces the paper's default setting.
    """

    def __init__(self, num_graphs: int, sigma: float, cutoff_lambda: float = 1.0):
        if num_graphs < 0:
            raise ValueError("num_graphs must be non-negative")
        if cutoff_lambda < 0:
            raise ValueError("cutoff_lambda must be non-negative")
        self.num_graphs = num_graphs
        self.sigma = sigma
        self.cutoff_lambda = cutoff_lambda

    @property
    def cutoff(self) -> float:
        """The distance attributed to graphs that miss the fragment."""
        return self.cutoff_lambda * self.sigma

    def from_range_result(self, distances: Mapping[int, float]) -> FragmentSelectivity:
        """Selectivity from a ``{graph_id: distance}`` range-query result.

        The matched-distance sum uses :func:`math.fsum`, which is exactly
        rounded and therefore independent of summation order: a global
        planner summing per-shard statistics produces bit-identical weights
        to an unsharded estimator walking the same distances.
        """
        return self.from_statistics(
            len(distances), math.fsum(distances.values())
        )

    def from_statistics(
        self, num_matching_graphs: int, matched_distance_sum: float
    ) -> FragmentSelectivity:
        """Selectivity from pre-aggregated range-result statistics.

        This is the planner-facing entry point: shards report
        ``(|T|, sum of matched distances)`` pairs and the global planner
        merges them before calling here with the global database size as
        ``n`` — the full distance maps never have to leave the shards.
        """
        matched = int(num_matching_graphs)
        if self.num_graphs == 0:
            return FragmentSelectivity(0.0, 0, 0.0)
        matched_sum = float(matched_distance_sum)
        missing = self.num_graphs - matched
        weight = (matched_sum + missing * self.cutoff) / self.num_graphs
        mean_matched = matched_sum / matched if matched else 0.0
        return FragmentSelectivity(
            weight=weight,
            num_matching_graphs=matched,
            mean_matched_distance=mean_matched,
        )
