"""Index-based partition selection (Section 5).

Given the indexed fragments found in a query graph and their selectivities,
pick a vertex-disjoint subset of maximum total selectivity by solving MWIS
on the overlapping-relation graph.  The returned partition is what the
superimposed-distance lower bound of Eq. (2) is summed over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.errors import PartitionError
from ..index.fragment_index import QueryFragment
from .mwis import MWISResult, solve_mwis
from .overlap_graph import OverlapGraph

__all__ = ["PartitionResult", "select_partition", "validate_partition"]


@dataclass(frozen=True)
class PartitionResult:
    """A vertex-disjoint set of query fragments chosen for pruning."""

    fragments: List[QueryFragment]
    weight: float
    method: str
    overlap_graph: OverlapGraph
    mwis: MWISResult

    @property
    def size(self) -> int:
        """Number of fragments in the partition."""
        return len(self.fragments)

    def covered_vertices(self) -> frozenset:
        """Union of the query vertices covered by the partition."""
        covered: set = set()
        for fragment in self.fragments:
            covered |= fragment.vertices
        return frozenset(covered)


def validate_partition(fragments: Sequence[QueryFragment]) -> None:
    """Raise :class:`PartitionError` unless the fragments are vertex-disjoint."""
    seen: set = set()
    for fragment in fragments:
        if fragment.vertices & seen:
            raise PartitionError("fragments in a partition must be vertex-disjoint")
        seen |= fragment.vertices


def select_partition(
    fragments: Sequence[QueryFragment],
    weights: Sequence[float],
    method: str = "greedy",
    k: int = 2,
) -> PartitionResult:
    """Choose a vertex-disjoint, maximum-selectivity subset of fragments.

    Parameters
    ----------
    fragments:
        Candidate indexed fragments found in the query graph.
    weights:
        Selectivity of each fragment (same order as ``fragments``).
    method:
        MWIS solver: ``"greedy"`` (Algorithm 1), ``"enhanced-greedy"``
        (Theorem 3, with parameter ``k``) or ``"exact"``.
    """
    overlap_graph = OverlapGraph.build(fragments, weights)
    mwis = solve_mwis(overlap_graph, method=method, k=k)
    chosen = overlap_graph.select_fragments(sorted(mwis.nodes))
    validate_partition(chosen)
    return PartitionResult(
        fragments=chosen,
        weight=mwis.weight,
        method=mwis.method,
        overlap_graph=overlap_graph,
        mwis=mwis,
    )
