"""PIS: partition-based graph index and search (Sections 3, 5, 6).

:class:`PISearch` implements the full three-step framework:

1. **Fragment-based index** — supplied as a built
   :class:`~repro.index.fragment_index.FragmentIndex`.
2. **Partition-based search** (Algorithm 2) — enumerate the indexed
   fragments of the query, run one range query per fragment, intersect the
   matching graph sets, estimate fragment selectivities, pick a
   vertex-disjoint partition by greedy MWIS on the overlapping-relation
   graph, and drop every graph whose summed fragment distances exceed the
   threshold (the lower bound of Eq. 2).
3. **Candidate verification** — compute the true minimum superimposed
   distance of the surviving candidates and keep those within the
   threshold.  Delegated to the pluggable verifiers of
   :mod:`repro.search.verify`, which reuse the lower bounds this module's
   filtering phase computes (:attr:`FilterOutcome.lower_bounds`).

The filtering phase touches only the index (never the database graphs);
verification is the only step that needs the graphs themselves, exactly as
in the paper's implementation notes (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.database import GraphDatabase
from ..core.errors import IndexNotBuiltError
from ..core.graph import LabeledGraph
from .. import perf
from ..index.bitset import ids_from_bits
from ..index.fragment_index import FragmentIndex, QueryFragment
from .partition import PartitionResult, select_partition
from .planner import GlobalPlanner, QueryPlan
from .results import PruningReport
from .selectivity import SelectivityEstimator
from .strategy import SearchStrategy
from .verify import AUTO_VERIFIER

__all__ = ["PISearch", "FilterOutcome"]


@dataclass
class FilterOutcome:
    """Everything the filtering phase of one query produced.

    Exposed separately from :class:`SearchResult` so experiments can study
    the pruning behaviour (candidate counts, partitions, selectivities)
    without paying for verification.
    """

    candidate_ids: List[int]
    fragment_distances: Dict[int, Dict[int, float]]
    fragments: List[QueryFragment]
    selectivities: List[float]
    partition: Optional[PartitionResult]
    report: PruningReport
    lower_bounds: Dict[int, float]


class PISearch(SearchStrategy):
    """Partition-based index and search engine.

    Parameters
    ----------
    database:
        The graph database (needed only for verification).
    measure:
        Ignored when given: the index's measure defines the distance
        semantics.  Accepted so every strategy shares the registry shape
        ``(database, measure, index=None)``.
    index:
        A built fragment index (required).  The legacy positional calling
        convention ``PISearch(index, database)`` is still accepted.
    epsilon:
        Selectivity floor; fragments with ``w(g) <= epsilon`` are dropped
        before the partition is selected (Algorithm 2, line 5).
    cutoff_lambda:
        Cutoff factor for selectivity estimation (Figure 11).
    partition_method / partition_k:
        MWIS solver used for the partition ("greedy", "enhanced-greedy",
        "exact") and its ``k`` parameter.
    verifier:
        Registry name of the candidate verifier (``"auto"`` resolves to the
        optimized bounded verifier; see :mod:`repro.search.verify`).
    verify_workers:
        Default worker-pool size for parallel candidate verification
        (``0`` = serial).
    verify_executor:
        :mod:`repro.exec` executor kind for the verification pool
        (``"thread"``, ``"process"``, ``"serial"``).
    """

    name = "pis"
    requires_index = True

    def __init__(
        self,
        database: GraphDatabase,
        measure=None,
        index: Optional[FragmentIndex] = None,
        epsilon: float = 0.0,
        cutoff_lambda: float = 1.0,
        partition_method: str = "greedy",
        partition_k: int = 2,
        verifier: str = AUTO_VERIFIER,
        verify_workers: int = 0,
        verify_executor: str = "thread",
    ):
        if isinstance(database, FragmentIndex):
            # Legacy calling convention: PISearch(index, database).  A third
            # positional meant epsilon in the old signature but would land in
            # (and be discarded from) the index slot here — reject it loudly
            # rather than silently changing pruning behaviour.
            if index is not None:
                raise TypeError(
                    "the legacy PISearch(index, database, ...) convention "
                    "accepts further parameters as keywords only "
                    "(e.g. epsilon=...)"
                )
            database, index = measure, database
            measure = None
        if index is None:
            raise IndexNotBuiltError("PISearch requires a built fragment index")
        super().__init__(
            database=database,
            measure=index.measure,
            index=index,
            verifier=verifier,
            verify_workers=verify_workers,
            verify_executor=verify_executor,
        )
        self.epsilon = epsilon
        self.cutoff_lambda = cutoff_lambda
        self.partition_method = partition_method
        self.partition_k = partition_k
        self._planner: Optional[GlobalPlanner] = None
        self._live_ids_memo: Optional[Tuple[int, FrozenSet[int]]] = None

    # ------------------------------------------------------------------
    # planning (the plan half of the plan/execute split)
    # ------------------------------------------------------------------
    @property
    def planner(self) -> GlobalPlanner:
        """The query planner (lazily built over the strategy's own index).

        The engine injects its own :class:`~repro.search.planner
        .GlobalPlanner` here so the unsharded strategy, the scatter path,
        and cache warming all share one plan cache.
        """
        if self._planner is None:
            self._planner = GlobalPlanner(
                self.index,
                epsilon=self.epsilon,
                cutoff_lambda=self.cutoff_lambda,
                partition_method=self.partition_method,
                partition_k=self.partition_k,
                counters=self.counters,
            )
        return self._planner

    @planner.setter
    def planner(self, planner: Optional[GlobalPlanner]) -> None:
        self._planner = planner

    def plan(self, query: LabeledGraph, sigma: float) -> QueryPlan:
        """Plan the filtering phase for one query (cached per generation)."""
        return self.planner.plan(query, sigma, num_graphs=self._database_size())

    def plan_query(self, query: LabeledGraph, sigma: float) -> Optional[QueryPlan]:
        """Planning hook of the :meth:`SearchStrategy.search` template.

        Planning is gated on the global ``"caches"`` optimization flag:
        ``optimizations_disabled()`` runs the legacy single-pass
        :meth:`_filter_candidates`, which the benchmark gate and the
        equivalence tests use as the reference.
        """
        if not perf.optimizations_enabled("caches"):
            return None
        return self.plan(query, sigma)

    # ------------------------------------------------------------------
    # filtering (Algorithm 2)
    # ------------------------------------------------------------------
    def filter_candidates(
        self,
        query: LabeledGraph,
        sigma: float,
        plan: Optional[QueryPlan] = None,
    ) -> FilterOutcome:
        """Run the partition-based filtering phase and return its outcome.

        When planning is enabled (the ``"caches"`` flag) the phase splits
        into :meth:`plan` + :meth:`execute_plan`; a caller-supplied ``plan``
        (the scatter path) skips planning entirely.  Candidate sets are
        intersected as big-int bitsets (one bitwise AND per fragment) when
        the index supports it and the ``"bitsets"`` optimization flag is
        on; the legacy hash-set path is kept both as a fallback and as the
        reference the benchmark gate compares against.  All paths produce
        identical candidates, distances, and lower bounds.
        """
        if plan is None:
            plan = self.plan_query(query, sigma)
        if plan is not None:
            return self.execute_plan(plan)
        with self.counters.timer("filter"):
            return self._filter_candidates(query, sigma)

    def execute_plan(self, plan: QueryPlan) -> FilterOutcome:
        """Execute a precomputed :class:`QueryPlan` against this index.

        The plan already carries the *global* filtering outcome — the
        intersected structure-candidate set and every candidate's Eq. 2
        lower bound, both computed once by the planner — so execution is a
        restriction of that outcome to this index's live graph ids.  Over
        the index the plan was computed on this is byte-identical to the
        legacy :meth:`_filter_candidates`; on a shard it is exactly the
        global outcome restricted to the shard's slice (shards partition
        the live ids, so the restricted candidate sets are disjoint and the
        restricted reports sum back to the global one).
        """
        with self.counters.timer("filter"):
            return self._execute_plan(plan)

    def _execute_plan(self, plan: QueryPlan) -> FilterOutcome:
        sigma = plan.sigma
        report = PruningReport(
            num_database_graphs=plan.num_database_graphs,
            num_query_fragments=plan.num_fragments,
            num_fragments_after_epsilon=len(plan.eligible),
            planned=True,
            estimated_candidates=plan.estimated_candidates,
        )

        if plan.structure_candidates is None:
            # No indexed fragment occurs in the query: the index cannot
            # prune anything and every locally live graph stays a candidate.
            candidate_ids: List[int] = self._all_graph_ids()
        else:
            live = self._live_id_set()
            candidate_ids = [
                graph_id
                for graph_id in plan.structure_candidates
                if graph_id in live
            ]

        report.num_structure_candidates = len(candidate_ids)

        # The Eq. 2 sweep already ran globally; partition report fields are
        # stated exactly when it did (``plan.partition_applied``), matching
        # the legacy path's ``if eligible and candidate_ids`` guard on the
        # global candidate set.
        partition: Optional[PartitionResult] = None
        lower_bounds: Dict[int, float] = {}
        if plan.partition_applied:
            partition = plan.partition
            report.partition_size = partition.size
            report.partition_weight = partition.weight
            bounds = plan.lower_bounds
            lower_bounds = {
                graph_id: bounds[graph_id] for graph_id in candidate_ids
            }
            candidate_ids = [
                graph_id
                for graph_id in candidate_ids
                if bounds[graph_id] <= sigma
            ]

        report.num_candidates = len(candidate_ids)
        self.counters.increment("filter.candidates", len(candidate_ids))
        return FilterOutcome(
            candidate_ids=candidate_ids,
            fragment_distances=dict(enumerate(plan.fragment_distances)),
            fragments=list(plan.fragments),
            selectivities=list(plan.selectivities),
            partition=partition,
            report=report,
            lower_bounds=lower_bounds,
        )

    def _live_id_set(self) -> FrozenSet[int]:
        """This index's live graph ids as a set, memoized per generation.

        Plan execution restricts the plan's global candidate sets by
        membership here; mutations bump the index generation, dropping the
        memo, so a stale id can never pass the restriction.
        """
        generation = self.index.generation
        memo = self._live_ids_memo
        if memo is not None and memo[0] == generation:
            return memo[1]
        live = frozenset(self.index.live_graph_ids())
        self._live_ids_memo = (generation, live)
        return live

    def _filter_candidates(self, query: LabeledGraph, sigma: float) -> FilterOutcome:
        num_graphs = self._database_size()
        report = PruningReport(num_database_graphs=num_graphs)
        use_bits = (
            perf.optimizations_enabled("bitsets") and self.index.supports_bitsets
        )

        # Lines 3-4: enumerate the indexed fragments of the query graph.
        fragments = self.index.enumerate_query_fragments(query)
        report.num_query_fragments = len(fragments)

        candidate_set: Optional[Set[int]] = None
        candidate_bits: Optional[int] = None
        fragment_distances: Dict[int, Dict[int, float]] = {}
        estimator = SelectivityEstimator(
            num_graphs=num_graphs, sigma=sigma, cutoff_lambda=self.cutoff_lambda
        )
        selectivities: List[float] = []

        # Lines 6-18: one range query per fragment; intersect the matching
        # graph sets; compute the fragment selectivities.
        self.counters.increment("filter.range_queries", len(fragments))
        for position, fragment in enumerate(fragments):
            distances, bits = self.index.range_query_with_bits(
                fragment, sigma, want_bits=use_bits
            )
            fragment_distances[position] = distances
            selectivities.append(estimator.from_range_result(distances).weight)
            if use_bits:
                candidate_bits = (
                    bits if candidate_bits is None else candidate_bits & bits
                )
            else:
                matched = set(distances)
                candidate_set = (
                    matched if candidate_set is None else candidate_set & matched
                )

        if use_bits:
            if candidate_bits is None:
                # No indexed fragment occurs in the query: the index cannot
                # prune anything and every live graph stays a candidate.
                candidate_ids: List[int] = self._all_graph_ids()
            else:
                candidate_ids = ids_from_bits(candidate_bits)
        else:
            if candidate_set is None:
                candidate_ids = self._all_graph_ids()
            else:
                candidate_ids = sorted(candidate_set)

        report.num_structure_candidates = len(candidate_ids)

        # Line 5: drop fragments whose selectivity is below the floor.
        eligible = [
            position
            for position in range(len(fragments))
            if selectivities[position] > self.epsilon
        ]
        report.num_fragments_after_epsilon = len(eligible)

        partition: Optional[PartitionResult] = None
        lower_bounds: Dict[int, float] = {}
        if eligible and candidate_ids:
            # Lines 19-20: overlapping-relation graph + greedy MWIS.
            partition = select_partition(
                [fragments[position] for position in eligible],
                [selectivities[position] for position in eligible],
                method=self.partition_method,
                k=self.partition_k,
            )
            report.partition_size = partition.size
            report.partition_weight = partition.weight

            # Lines 21-23: apply the lower bound of Eq. (2).  Candidates are
            # visited in ascending id order, so the surviving list is sorted
            # by construction.
            partition_positions = [
                eligible[node] for node in sorted(partition.mwis.nodes)
            ]
            partition_maps = [
                fragment_distances[position] for position in partition_positions
            ]
            surviving: List[int] = []
            for graph_id in candidate_ids:
                bound = 0.0
                for distances in partition_maps:
                    distance = distances.get(graph_id)
                    if distance is None:
                        # The graph has no occurrence of this fragment within
                        # sigma, so its superimposed distance already exceeds
                        # the threshold.
                        bound = sigma + 1.0
                        break
                    bound += distance
                    if bound > sigma:
                        break
                lower_bounds[graph_id] = bound
                if bound <= sigma:
                    surviving.append(graph_id)
            candidate_ids = surviving

        report.num_candidates = len(candidate_ids)
        self.counters.increment("filter.candidates", len(candidate_ids))
        return FilterOutcome(
            candidate_ids=candidate_ids,
            fragment_distances=fragment_distances,
            fragments=fragments,
            selectivities=selectivities,
            partition=partition,
            report=report,
            lower_bounds=lower_bounds,
        )

    # ------------------------------------------------------------------
    # full search (filtering + verification)
    # ------------------------------------------------------------------
    def candidates(self, query: LabeledGraph, sigma: float) -> List[int]:
        """Return the candidate graph ids (filtering phase only)."""
        return self.filter_candidates(query, sigma).candidate_ids

    def _filter(
        self, query: LabeledGraph, sigma: float
    ) -> Tuple[List[int], PruningReport, Optional[Dict[int, float]]]:
        """Filtering hook of the shared :meth:`SearchStrategy.search` template.

        Exposes the full :class:`FilterOutcome` to the template: the pruning
        report and — crucially — the per-candidate Eq. 2 lower bounds, which
        the bounded verifier uses to order, short-circuit, and early-exit
        verification.
        """
        outcome = self.filter_candidates(query, sigma, plan=None)
        return outcome.candidate_ids, outcome.report, outcome.lower_bounds

    def _execute(
        self, plan: QueryPlan
    ) -> Tuple[List[int], PruningReport, Optional[Dict[int, float]]]:
        """Plan-execution hook of the :meth:`SearchStrategy.search` template."""
        outcome = self.execute_plan(plan)
        return outcome.candidate_ids, outcome.report, outcome.lower_bounds
