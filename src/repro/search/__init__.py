"""Partition-based search: selectivity, MWIS partition, PIS, baselines."""

from .baselines import ExactTopoPruneSearch, NaiveSearch, TopoPruneSearch
from .mwis import (
    MWISResult,
    enhanced_greedy_mwis,
    exact_mwis,
    greedy_mwis,
    solve_mwis,
)
from .overlap_graph import OverlapGraph
from .partition import PartitionResult, select_partition, validate_partition
from .pis import FilterOutcome, PISearch
from .registry import available_strategies, make_strategy, register_strategy
from .results import PruningReport, SearchResult
from .selectivity import FragmentSelectivity, SelectivityEstimator
from .strategy import SearchStrategy

__all__ = [
    "SearchStrategy",
    "SearchResult",
    "PruningReport",
    "SelectivityEstimator",
    "FragmentSelectivity",
    "OverlapGraph",
    "MWISResult",
    "greedy_mwis",
    "enhanced_greedy_mwis",
    "exact_mwis",
    "solve_mwis",
    "PartitionResult",
    "select_partition",
    "validate_partition",
    "PISearch",
    "FilterOutcome",
    "NaiveSearch",
    "TopoPruneSearch",
    "ExactTopoPruneSearch",
    "register_strategy",
    "make_strategy",
    "available_strategies",
]
