"""Partition-based search: selectivity, MWIS partition, PIS, baselines,
and the candidate-verification subsystem (:mod:`repro.search.verify`)."""

from .baselines import ExactTopoPruneSearch, NaiveSearch, TopoPruneSearch
from .mwis import (
    MWISResult,
    enhanced_greedy_mwis,
    exact_mwis,
    greedy_mwis,
    solve_mwis,
)
from .overlap_graph import OverlapGraph
from .partition import PartitionResult, select_partition, validate_partition
from .pis import FilterOutcome, PISearch
from .planner import GlobalPlanner, QueryPlan
from .registry import available_strategies, make_strategy, register_strategy
from .results import PruningReport, SearchResult
from .selectivity import FragmentSelectivity, SelectivityEstimator
from .strategy import SearchStrategy
from .verify import (
    BoundedVerifier,
    LegacyVerifier,
    Verifier,
    available_verifiers,
    make_verifier,
    register_verifier,
)

__all__ = [
    "SearchStrategy",
    "SearchResult",
    "PruningReport",
    "SelectivityEstimator",
    "FragmentSelectivity",
    "OverlapGraph",
    "MWISResult",
    "greedy_mwis",
    "enhanced_greedy_mwis",
    "exact_mwis",
    "solve_mwis",
    "PartitionResult",
    "select_partition",
    "validate_partition",
    "PISearch",
    "FilterOutcome",
    "GlobalPlanner",
    "QueryPlan",
    "NaiveSearch",
    "TopoPruneSearch",
    "ExactTopoPruneSearch",
    "register_strategy",
    "make_strategy",
    "available_strategies",
    "Verifier",
    "LegacyVerifier",
    "BoundedVerifier",
    "register_verifier",
    "make_verifier",
    "available_verifiers",
]
