"""Candidate verification subsystem: pluggable, bounded, memoized, parallel.

Verification — computing the true minimum superimposed distance of every
candidate that survived filtering — dominates query time at low selectivity
(see ``verify.seconds`` in :meth:`repro.engine.Engine.profile`).  This
module turns the former inline loop of
:meth:`repro.search.strategy.SearchStrategy.verify` into a subsystem of
pluggable :class:`Verifier` components, registered by name exactly like the
search strategies in :mod:`repro.search.registry`:

:class:`LegacyVerifier` (``"legacy"``)
    The reference path: one full :func:`repro.core.best_superposition` per
    candidate, in candidate order, with no caching.  The benchmark gate
    measures every optimized verifier against it and requires byte-identical
    answers and distances.

:class:`BoundedVerifier` (``"bounded"``, the default)
    Exploits the per-candidate lower bounds that the PIS filtering phase
    already computes (:attr:`repro.search.pis.FilterOutcome.lower_bounds`):

    * **ordering** — candidates are verified in ascending lower-bound order,
      so the most promising candidates (and the cheapest branch-and-bound
      runs) are decided first;
    * **short-circuit** — a candidate whose lower bound already exceeds
      ``sigma`` is rejected without calling ``best_superposition`` at all
      (its true distance can only be larger).  A safety net rather than a
      pipeline speedup: PIS filtering already drops such candidates, so
      this fires only for direct :meth:`Verifier.verify` calls or
      strategies that do not pre-prune on the bound;
    * **early exit** — the lower bound is threaded into the
      branch-and-bound search as ``known_lower_bound``: a complete
      superposition that meets the bound is provably minimal, so the search
      stops without exploring the rest of the tree;
    * **memoization** — exact distances are cached per
      ``(measure, query content, graph id, graph revision)`` in a bounded
      :class:`~repro.perf.MemoCache` shared through the fragment index, so
      repeated queries (batches, benchmark rounds, sigma sweeps) stop
      recomputing.  The *revision* component is the database's per-slot
      rebinding counter (:meth:`repro.core.GraphDatabase.revision`): when a
      graph id is removed and later reused for a different graph, its
      revision changes and the old entry can never be served again;
    * **parallelism** — ``workers=N`` fans candidate verification out over a
      :mod:`repro.exec` executor, with results merged back in deterministic
      candidate order.  The pool kind is the ``executor`` constructor
      parameter: ``"thread"`` (the default) shares the caller's caches but
      is GIL-bound for pure-Python distance computation, while
      ``"process"`` ships candidate chunks to worker processes — the parent
      resolves memo-cache hits first, only cache misses travel, and the
      computed distances are cached on return — giving true parallel
      verification at the cost of pickling the query and the candidate
      graphs.  ``"serial"`` disables the pool regardless of ``workers``.

Both verifiers return answers in the original candidate order, so every
configuration — serial or parallel, cached or cold — produces byte-identical
results.  The global ``"verify"`` optimization flag
(:func:`repro.perf.optimizations_disabled`) forces the legacy path, which is
how the benchmark gate proves the optimized verifier safe.

Examples
--------
>>> from repro.search.verify import available_verifiers, resolve_verifier_name
>>> available_verifiers()
['bounded', 'legacy']
>>> resolve_verifier_name("auto")
'bounded'
"""

from __future__ import annotations

import hashlib
import inspect
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.database import GraphDatabase
from ..core.distance import DistanceMeasure
from ..core.errors import EngineConfigError, UnknownComponentError
from ..core.graph import LabeledGraph
from ..core.superimposed import INFINITE_DISTANCE, best_superposition
from ..exec import make_executor
from .. import perf
from ..perf import GLOBAL_COUNTERS, MemoCache, PerfCounters, graph_signature

__all__ = [
    "Verifier",
    "LegacyVerifier",
    "BoundedVerifier",
    "register_verifier",
    "make_verifier",
    "available_verifiers",
    "resolve_verifier_name",
    "query_cache_key",
    "DEFAULT_VERIFIER",
    "AUTO_VERIFIER",
]

#: registry name that resolves to the default optimized verifier
AUTO_VERIFIER = "auto"

#: the verifier ``"auto"`` resolves to
DEFAULT_VERIFIER = "bounded"

#: cache-size default for verifiers that own a private distance cache
PRIVATE_DISTANCE_CACHE_SIZE = 16384


def query_cache_key(query: LabeledGraph, measure: DistanceMeasure) -> str:
    """Stable content key of ``(measure, query)`` for distance memoization.

    The key digests the measure's :meth:`~repro.core.DistanceMeasure.cache_token`
    together with the full content signature of the query graph (vertex ids,
    labels, weights, edges), so two structurally identical query objects
    share cached distances while any semantic difference — a relabeled edge,
    a different measure — separates them.

    This key identifies only the *query* side of a cached distance.  The
    graph side is identified by ``(graph id, graph revision)`` — the id
    alone is not enough, because a dynamic database can retire an id and
    rebind it to a different graph (delete + insert), and a distance cached
    for the previous occupant must never be served for the new one.
    :meth:`BoundedVerifier._verify_one` therefore includes
    ``database.revision(graph_id)`` in every cache key.

    Parameters
    ----------
    query:
        The query graph.
    measure:
        The distance measure the cached distances are exact under.

    Returns
    -------
    str
        A hex digest usable as the query part of a cache key.
    """
    payload = repr((measure.cache_token(), graph_signature(query)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: accepted values of the verifier ``kernel`` mode
KERNEL_MODES = ("auto", "array", "legacy")


def resolve_kernel_mode(kernel: str) -> Optional[bool]:
    """Map a ``kernel`` mode string to a ``use_kernel`` argument.

    ``"auto"`` -> ``None`` (follow the global ``"kernel"`` optimization
    flag), ``"array"`` -> ``True`` (force the array kernel where it can
    run), ``"legacy"`` -> ``False`` (force the recursive search).
    """
    if kernel not in KERNEL_MODES:
        raise EngineConfigError(
            f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}"
        )
    if kernel == "auto":
        return None
    return kernel == "array"


def _verify_chunk_task(payload: Tuple) -> List[Tuple[int, float, int, int, int]]:
    """Process-pool task: verify one chunk of candidates exactly.

    The payload carries everything a worker needs — the query, the measure,
    the threshold, the kernel routing flag, and ``(graph_id, graph,
    lower_bound)`` triples — so the task is self-contained and picklable.
    Returns, per candidate, ``(graph_id, exact_distance,
    superpositions_explored, early_exits, nodes_expanded)``; the parent
    turns the raw distances into answers, caches them, and accounts the
    work, so process-verified results are byte-identical to (and accounted
    exactly like) serial verification.
    """
    query, measure, sigma, use_kernel, candidates = payload
    outcomes: List[Tuple[int, float, int, int, int]] = []
    for graph_id, graph, bound in candidates:
        result = best_superposition(
            query,
            graph,
            measure,
            threshold=sigma,
            known_lower_bound=bound,
            use_kernel=use_kernel,
        )
        outcomes.append(
            (
                graph_id,
                result.distance,
                result.explored,
                1 if result.early_exit else 0,
                result.nodes_expanded,
            )
        )
    return outcomes


class Verifier:
    """Base class of the pluggable candidate verifiers.

    A verifier computes, for each candidate graph id, whether the true
    minimum superimposed distance between the query and that graph is within
    ``sigma``, returning the surviving ids and their exact distances.
    Subclasses implement :meth:`verify`; construction is uniform so
    :func:`make_verifier` can build any of them from a registry name.

    Parameters
    ----------
    database:
        The graph database candidates refer into.
    measure:
        Decomposable superimposed distance measure (verification semantics).
    counters:
        Optional :class:`~repro.perf.PerfCounters` sink; a private sink
        mirroring the process-wide counters is created when omitted.
    distance_cache:
        Optional :class:`~repro.perf.MemoCache` for exact distances, shared
        through the fragment index so batches and sigma sweeps reuse work.
        Verifiers that do not memoize ignore it.
    workers:
        Default worker-pool size for parallel verification (``0`` = serial);
        a per-call ``workers=`` argument overrides it.
    executor:
        :mod:`repro.exec` executor kind driving the worker pool:
        ``"thread"`` (default), ``"process"`` for GIL-free verification, or
        ``"serial"`` to pin verification to the calling thread.  Verifiers
        that do not parallelize ignore it.
    kernel:
        Branch-and-bound backend selection: ``"auto"`` (default) follows
        the global ``"kernel"`` optimization flag, ``"array"`` forces the
        array kernel of :mod:`repro.core.kernel` where it can run, and
        ``"legacy"`` pins the recursive search.  Both backends return
        byte-identical distances.
    """

    #: verifier identifier used in reports and registry lookups
    name = "abstract"

    def __init__(
        self,
        database: GraphDatabase,
        measure: DistanceMeasure,
        counters: Optional[PerfCounters] = None,
        distance_cache: Optional[MemoCache] = None,
        workers: int = 0,
        executor: str = "thread",
        kernel: str = "auto",
    ):
        self.database = database
        self.measure = measure
        self.counters = (
            counters
            if isinstance(counters, PerfCounters)
            else PerfCounters(mirror=GLOBAL_COUNTERS)
        )
        self.distance_cache = distance_cache
        self.workers = int(workers or 0)
        self.executor = executor
        self.kernel = kernel
        #: ``use_kernel`` argument derived from ``kernel`` (None = global flag)
        self.use_kernel = resolve_kernel_mode(kernel)

    def _graph_revision(self, graph_id: int) -> int:
        """Rebinding revision of ``graph_id`` in the database (0 if static).

        Part of every distance-cache key: a dynamic database bumps the
        revision whenever a slot is removed, replaced, or reclaimed, which
        retires every cached distance of the previous occupant.  Databases
        without revision tracking are immutable-by-convention and report 0.
        """
        revision = getattr(self.database, "revision", None)
        if callable(revision):
            return revision(graph_id)
        return 0

    def verify(
        self,
        query: LabeledGraph,
        sigma: float,
        candidate_ids: Sequence[int],
        lower_bounds: Optional[Mapping[int, float]] = None,
        workers: Optional[int] = None,
    ) -> Tuple[List[int], Dict[int, float]]:
        """Verify candidates: keep graphs whose true distance is within sigma.

        Parameters
        ----------
        query:
            The query graph.
        sigma:
            Distance threshold.
        candidate_ids:
            Graph ids surviving the filtering phase.
        lower_bounds:
            Optional proven lower bounds per candidate id (the filtering
            phase's Eq. 2 bounds); verifiers that cannot use them ignore the
            mapping.  Bounds must be *true* lower bounds of the superimposed
            distance — a wrong bound can drop a true answer.
        workers:
            Worker-pool size for this call (``None`` = the constructor
            default, ``0``/``1`` = serial).

        Returns
        -------
        tuple
            ``(answer_ids, answer_distances)``: the surviving ids in
            candidate order and their exact distances.
        """
        raise NotImplementedError


class LegacyVerifier(Verifier):
    """The pre-subsystem verification loop, kept as the reference path.

    One full branch-and-bound :func:`~repro.core.best_superposition` call
    per candidate, in candidate order, with the threshold as the only
    pruning device — no ordering, no lower-bound short-circuit, no
    memoization, no parallelism.  ``optimizations_disabled()`` routes every
    strategy here, and the benchmark gate uses it as the baseline that
    optimized verifiers must match byte for byte.
    """

    name = "legacy"

    def verify(
        self,
        query: LabeledGraph,
        sigma: float,
        candidate_ids: Sequence[int],
        lower_bounds: Optional[Mapping[int, float]] = None,
        workers: Optional[int] = None,
    ) -> Tuple[List[int], Dict[int, float]]:
        """Verify candidates with one full search each (see class docs)."""
        answers: List[int] = []
        distances: Dict[int, float] = {}
        explored = 0
        expanded = 0
        with self.counters.timer("verify"):
            for graph_id in candidate_ids:
                result = best_superposition(
                    query,
                    self.database[graph_id],
                    self.measure,
                    threshold=sigma,
                    use_kernel=self.use_kernel,
                )
                explored += result.explored
                expanded += result.nodes_expanded
                if result.distance <= sigma:
                    answers.append(graph_id)
                    distances[graph_id] = result.distance
        self.counters.increment("verify.candidates", len(candidate_ids))
        self.counters.increment("verify.superpositions_explored", explored)
        self.counters.increment("verify.nodes_expanded", expanded)
        return answers, distances


class BoundedVerifier(Verifier):
    """Lower-bound-driven verifier: order, short-circuit, memoize, early-exit.

    See the module docstring for the four optimizations.  Every one of them
    preserves exactness:

    * a candidate is skipped only when its proven lower bound exceeds
      ``sigma`` (so its true distance must too);
    * the branch-and-bound search stops early only when a complete
      superposition meets the proven lower bound (so it is the minimum);
    * cached distances are exact by construction — an ``inf`` computed under
      threshold ``t`` is recorded as "greater than ``t``" and recomputed
      when a later query needs a larger threshold.

    The verification order (ascending lower bound, ties in candidate order)
    is exposed as :attr:`last_order` for diagnostics and tests; answers are
    always reported in the original candidate order regardless.
    """

    name = "bounded"

    def __init__(
        self,
        database: GraphDatabase,
        measure: DistanceMeasure,
        counters: Optional[PerfCounters] = None,
        distance_cache: Optional[MemoCache] = None,
        workers: int = 0,
        executor: str = "thread",
        kernel: str = "auto",
    ):
        super().__init__(
            database,
            measure,
            counters=counters,
            distance_cache=distance_cache,
            workers=workers,
            executor=executor,
            kernel=kernel,
        )
        if self.distance_cache is None:
            # No index-shared cache (e.g. an index-free baseline strategy):
            # own a private one so repeated queries still benefit.
            self.distance_cache = MemoCache(
                "verify_distance",
                maxsize=PRIVATE_DISTANCE_CACHE_SIZE,
                counters=self.counters,
            )
        #: candidate ids in the order the last :meth:`verify` decided them
        self.last_order: List[int] = []

    # ------------------------------------------------------------------
    # the verification plan
    # ------------------------------------------------------------------
    def plan(
        self,
        sigma: float,
        candidate_ids: Sequence[int],
        lower_bounds: Optional[Mapping[int, float]] = None,
    ) -> Tuple[List[int], List[int]]:
        """Split candidates into ``(ordered, skipped)`` without verifying.

        ``ordered`` holds the candidates that need a distance computation,
        sorted by ascending filtering lower bound (ties keep candidate
        order); ``skipped`` holds the candidates whose lower bound already
        exceeds ``sigma`` and which are therefore rejected outright.

        Exposed separately so tests and diagnostics can inspect the
        ordering and short-circuit decisions without paying for
        verification.
        """
        bounds = lower_bounds or {}
        ordered: List[Tuple[float, int, int]] = []
        skipped: List[int] = []
        for position, graph_id in enumerate(candidate_ids):
            bound = bounds.get(graph_id, 0.0)
            if bound > sigma:
                skipped.append(graph_id)
            else:
                ordered.append((bound, position, graph_id))
        ordered.sort()
        return [graph_id for _, _, graph_id in ordered], skipped

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(
        self,
        query: LabeledGraph,
        sigma: float,
        candidate_ids: Sequence[int],
        lower_bounds: Optional[Mapping[int, float]] = None,
        workers: Optional[int] = None,
    ) -> Tuple[List[int], Dict[int, float]]:
        """Verify candidates using the filtering lower bounds (see class docs)."""
        candidate_ids = list(candidate_ids)
        bounds = lower_bounds or {}
        pool_size = self.workers if workers is None else int(workers or 0)
        with self.counters.timer("verify"):
            ordered, skipped = self.plan(sigma, candidate_ids, bounds)
            self.last_order = list(ordered)
            query_key = (
                query_cache_key(query, self.measure)
                if perf.optimizations_enabled("caches")
                else None
            )
            parallel = (
                pool_size > 1
                and len(ordered) > 1
                and self.executor != "serial"
                and perf.optimizations_enabled("parallel")
            )
            if parallel and self.executor == "process":
                outcomes = self._verify_process(
                    query, query_key, ordered, sigma, bounds, pool_size
                )
                self.counters.increment("verify.parallel_batches")
            elif parallel:
                pool = make_executor(
                    self.executor, workers=pool_size, counters=self.counters
                )
                outcomes = pool.map(
                    lambda graph_id: self._verify_one(
                        query, query_key, graph_id, sigma, bounds.get(graph_id)
                    ),
                    ordered,
                )
                self.counters.increment("verify.parallel_batches")
            else:
                outcomes = [
                    self._verify_one(
                        query, query_key, graph_id, sigma, bounds.get(graph_id)
                    )
                    for graph_id in ordered
                ]
        found = {
            graph_id: distance
            for graph_id, distance in zip(ordered, (o[0] for o in outcomes))
            if distance is not None
        }
        # Deterministic output: answers in original candidate order, exactly
        # as the legacy loop reports them.
        answers = [graph_id for graph_id in candidate_ids if graph_id in found]
        distances = {graph_id: found[graph_id] for graph_id in answers}
        self.counters.increment("verify.candidates", len(candidate_ids))
        self.counters.increment("verify.lower_bound_skips", len(skipped))
        self.counters.increment(
            "verify.superpositions_explored", sum(o[1] for o in outcomes)
        )
        self.counters.increment("verify.early_exits", sum(o[2] for o in outcomes))
        self.counters.increment("verify.nodes_expanded", sum(o[3] for o in outcomes))
        return answers, distances

    def _cache_key(
        self, query_key: Optional[str], graph_id: int
    ) -> Optional[Tuple[str, Any, int]]:
        """Distance-cache key of one candidate, or ``None`` when caching is off."""
        if query_key is None or self.distance_cache is None:
            return None
        return (query_key, graph_id, self._graph_revision(graph_id))

    def _cached_outcome(
        self, cache_key: Optional[Tuple[str, Any, int]], sigma: float
    ) -> Optional[Tuple[Optional[float], int, int, int]]:
        """Resolve one candidate from the distance cache, if possible.

        Returns the outcome tuple when the cache decides the candidate, or
        ``None`` when a distance computation is needed (miss, or an entry
        cached only as "> threshold" at a smaller threshold — the refresh
        case, which is also accounted here).
        """
        if cache_key is None:
            return None
        entry = self.distance_cache.get(cache_key)
        if entry is MemoCache.MISS:
            return None
        distance, threshold = entry
        if distance != INFINITE_DISTANCE:
            # Finite cached distances are exact minima.
            return (distance if distance <= sigma else None, 0, 0, 0)
        if sigma <= threshold:
            # The true distance exceeds the cached threshold, which
            # already covers this sigma.
            return (None, 0, 0, 0)
        # Cached only as "> threshold" — recompute with the larger
        # threshold and refresh the entry.
        self.counters.increment("verify.cache_refreshes")
        return None

    def _verify_one(
        self,
        query: LabeledGraph,
        query_key: Optional[str],
        graph_id: int,
        sigma: float,
        bound: Optional[float],
    ) -> Tuple[Optional[float], int, int, int]:
        """Decide one candidate:
        ``(distance-or-None, explored, early_exits, nodes_expanded)``.

        ``distance`` is the exact minimum superimposed distance when it is
        within ``sigma`` and ``None`` otherwise.  Thread-safe: the memo
        cache takes its own lock and everything else is local.
        """
        cache_key = self._cache_key(query_key, graph_id)
        cached = self._cached_outcome(cache_key, sigma)
        if cached is not None:
            return cached
        result = best_superposition(
            query,
            self.database[graph_id],
            self.measure,
            threshold=sigma,
            known_lower_bound=bound,
            use_kernel=self.use_kernel,
        )
        if cache_key is not None:
            self.distance_cache.put(cache_key, (result.distance, sigma))
        return (
            result.distance if result.distance <= sigma else None,
            result.explored,
            1 if result.early_exit else 0,
            result.nodes_expanded,
        )

    def _verify_process(
        self,
        query: LabeledGraph,
        query_key: Optional[str],
        ordered: Sequence[int],
        sigma: float,
        bounds: Mapping[int, float],
        pool_size: int,
    ) -> List[Tuple[Optional[float], int, int, int]]:
        """Verify the ordered candidates in worker processes.

        The memo cache stays parent-side: cache hits are resolved before
        dispatch, only misses ship to the workers (chunked so each worker
        gets one contiguous slice), and the computed exact distances are
        cached on return — so a process-verified query warms the same cache
        a serial one would, byte for byte.
        """
        outcomes: Dict[int, Tuple[Optional[float], int, int, int]] = {}
        pending: List[int] = []
        for graph_id in ordered:
            cached = self._cached_outcome(self._cache_key(query_key, graph_id), sigma)
            if cached is not None:
                outcomes[graph_id] = cached
            else:
                pending.append(graph_id)
        if pending:
            chunk_size = max(1, (len(pending) + pool_size - 1) // pool_size)
            payloads = []
            for position in range(0, len(pending), chunk_size):
                chunk = pending[position : position + chunk_size]
                payloads.append(
                    (
                        query,
                        self.measure,
                        sigma,
                        self.use_kernel,
                        [
                            (graph_id, self.database[graph_id], bounds.get(graph_id))
                            for graph_id in chunk
                        ],
                    )
                )
            pool = make_executor(
                "process", workers=pool_size, counters=self.counters
            )
            for chunk_outcomes in pool.map(_verify_chunk_task, payloads):
                for graph_id, distance, explored, early, expanded in chunk_outcomes:
                    cache_key = self._cache_key(query_key, graph_id)
                    if cache_key is not None:
                        self.distance_cache.put(cache_key, (distance, sigma))
                    outcomes[graph_id] = (
                        distance if distance <= sigma else None,
                        explored,
                        early,
                        expanded,
                    )
        return [outcomes[graph_id] for graph_id in ordered]


# ----------------------------------------------------------------------
# registry (mirrors repro.search.registry / repro.index.backends)
# ----------------------------------------------------------------------
_VERIFIERS: Dict[str, type] = {}


def register_verifier(cls: type) -> type:
    """Register a verifier class under its ``name`` attribute.

    Usable as a decorator, exactly like
    :func:`repro.search.register_strategy`; third-party verifiers become
    reachable from :class:`repro.engine.EngineConfig` by name.
    """
    _VERIFIERS[cls.name] = cls
    return cls


def available_verifiers() -> List[str]:
    """Return the names of all registered verifiers (sorted)."""
    return sorted(_VERIFIERS)


def resolve_verifier_name(name: str) -> str:
    """Resolve ``"auto"`` to the default verifier; pass other names through."""
    return DEFAULT_VERIFIER if name == AUTO_VERIFIER else name


def make_verifier(
    name: str,
    database: GraphDatabase,
    measure: DistanceMeasure,
    counters: Optional[PerfCounters] = None,
    distance_cache: Optional[MemoCache] = None,
    workers: int = 0,
    executor: str = "thread",
    kernel: str = "auto",
) -> Verifier:
    """Instantiate a registered verifier by name.

    ``"auto"`` resolves to :data:`DEFAULT_VERIFIER`.  Unknown names raise
    :class:`~repro.core.errors.UnknownComponentError` listing the registered
    alternatives; invalid constructor parameters surface as
    :class:`~repro.core.errors.EngineConfigError`.
    """
    resolved = resolve_verifier_name(name)
    if resolved not in _VERIFIERS:
        raise UnknownComponentError("verifier", resolved, _VERIFIERS)
    cls = _VERIFIERS[resolved]
    kwargs: Dict[str, Any] = {
        "counters": counters,
        "distance_cache": distance_cache,
        "workers": workers,
    }
    # Third-party verifiers written before the executor and kernel layers
    # keep working: those kinds are passed only to constructors that accept
    # them.
    signature = inspect.signature(cls.__init__)
    accepts_any = any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in signature.parameters.values()
    )
    if "executor" in signature.parameters or accepts_any:
        kwargs["executor"] = executor
    if "kernel" in signature.parameters or accepts_any:
        kwargs["kernel"] = kernel
    try:
        return cls(database, measure, **kwargs)
    except TypeError as exc:
        raise EngineConfigError(
            f"invalid parameters for verifier {resolved!r}: {exc}"
        ) from exc


register_verifier(LegacyVerifier)
register_verifier(BoundedVerifier)
