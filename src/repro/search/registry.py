"""String-keyed registry of search strategies.

Mirrors the backend registry in :mod:`repro.index.backends`: every
:class:`~repro.search.strategy.SearchStrategy` subclass registers under its
``name`` attribute and is instantiable through :func:`make_strategy` with
the uniform ``(database, measure, index=None)`` shape.  This is what lets
:class:`repro.engine.Engine` pick its strategy from a declarative config,
and lets callers swap PIS for a baseline with a single string.  The
candidate verifiers of :mod:`repro.search.verify` have their own registry
of the same shape (:func:`repro.search.verify.make_verifier`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.database import GraphDatabase
from ..core.distance import DistanceMeasure
from ..core.errors import EngineConfigError, UnknownComponentError
from ..index.fragment_index import FragmentIndex
from .baselines import ExactTopoPruneSearch, NaiveSearch, TopoPruneSearch
from .pis import PISearch
from .strategy import SearchStrategy

__all__ = [
    "register_strategy",
    "make_strategy",
    "available_strategies",
    "strategy_class",
]

_STRATEGIES: Dict[str, type] = {}


def register_strategy(cls: type) -> type:
    """Register a strategy class under its ``name`` attribute."""
    _STRATEGIES[cls.name] = cls
    return cls


def strategy_class(name: str) -> type:
    """Return the registered strategy class for ``name`` (without building it).

    Lets callers inspect a strategy's constructor — e.g.
    :meth:`repro.engine.Engine.make_strategy` only injects its
    ``verifier``/``verify_workers`` defaults into strategies that accept
    them, so third-party strategies keeping the plain
    ``(database, measure, index=None)`` contract stay constructible.
    """
    if name not in _STRATEGIES:
        raise UnknownComponentError("search strategy", name, _STRATEGIES)
    return _STRATEGIES[name]


def available_strategies() -> List[str]:
    """Return the names of all registered search strategies."""
    return sorted(_STRATEGIES)


def make_strategy(
    name: str,
    database: GraphDatabase,
    measure: Optional[DistanceMeasure] = None,
    index: Optional[FragmentIndex] = None,
    **params,
) -> SearchStrategy:
    """Instantiate a registered search strategy by name.

    ``params`` are forwarded to the strategy constructor (e.g. ``epsilon``
    or ``partition_method`` for ``"pis"``).  Strategies whose
    ``requires_index`` flag is set reject a missing ``index`` with a clear
    configuration error instead of failing deep inside the constructor.
    """
    if name not in _STRATEGIES:
        raise UnknownComponentError("search strategy", name, _STRATEGIES)
    cls = _STRATEGIES[name]
    if cls.requires_index and index is None:
        raise EngineConfigError(
            f"strategy {name!r} requires a built fragment index"
        )
    try:
        return cls(database, measure=measure, index=index, **params)
    except TypeError as exc:
        raise EngineConfigError(
            f"invalid parameters for strategy {name!r}: {exc}"
        ) from exc


register_strategy(NaiveSearch)
register_strategy(TopoPruneSearch)
register_strategy(ExactTopoPruneSearch)
register_strategy(PISearch)
